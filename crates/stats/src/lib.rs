//! # ssd-stats
//!
//! Statistics substrate for the SSD field-study reproduction.
//!
//! The paper's characterization sections are built from a small set of
//! statistical primitives, all implemented here from scratch:
//!
//! * [`summary`] — streaming means/variances (Welford) and summaries.
//! * [`mod@quantile`] — quantiles with linear interpolation (R type-7) and
//!   quartiles (Figure 7's shaded bands).
//! * [`ecdf`] — empirical CDFs, including *censored* ECDFs with a mass at
//!   infinity (the "∞" bars of Figures 3 and 5).
//! * [`rank`] — tie-aware fractional ranking.
//! * [`correlation`] — Pearson and Spearman correlation and full matrices
//!   (Table 2); Spearman is rank-then-Pearson, so it detects arbitrary
//!   monotone relationships.
//! * [`histogram`] — fixed-width binning.
//! * [`hazard`] — exposure-normalized event rates (the dashed failure-rate
//!   curves of Figures 6 and 8, where raw counts must be normalized by the
//!   number of drives at risk in each bin).
//! * [`survival`] — Kaplan–Meier product-limit estimation for the
//!   right-censored durations of Figures 3 and 5, and two-sample
//!   Kolmogorov–Smirnov separation tests.
//! * [`rng`] — a tiny, dependency-free SplitMix64 generator used wherever
//!   a consumer needs deterministic randomness (sampling, shuffling,
//!   stream splitting).

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod correlation;
pub mod ecdf;
pub mod hazard;
pub mod histogram;
pub mod quantile;
pub mod rank;
pub mod rng;
pub mod summary;
pub mod survival;

pub use correlation::{pearson, spearman, spearman_matrix};
pub use ecdf::Ecdf;
pub use hazard::BinnedRate;
pub use histogram::Histogram;
pub use quantile::{quantile, quartiles};
pub use rank::fractional_ranks;
pub use rng::SplitMix64;
pub use summary::Summary;
pub use survival::{ks_p_value, ks_statistic, Duration, KaplanMeier};
