//! Quantiles with linear interpolation (R type-7, the numpy default).

/// Computes the `q`-quantile (`0 ≤ q ≤ 1`) of a **sorted** slice using
/// linear interpolation between order statistics (R type-7).
///
/// Returns NaN for an empty slice. Panics if `q` is outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    match sorted.len() {
        0 => f64::NAN,
        1 => sorted[0],
        n => {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            let frac = pos - lo as f64;
            sorted[lo] + (sorted[hi] - sorted[lo]) * frac
        }
    }
}

/// Computes the `q`-quantile of an unsorted slice (sorts a copy).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    quantile_sorted(&v, q)
}

/// First quartile, median, third quartile of an unsorted slice — the
/// shaded-band statistics of Figure 7.
pub fn quartiles(values: &[f64]) -> (f64, f64, f64) {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    (
        quantile_sorted(&v, 0.25),
        quantile_sorted(&v, 0.50),
        quantile_sorted(&v, 0.75),
    )
}

/// Computes several quantiles in one sort. `qs` need not be sorted.
pub fn quantiles(values: &[f64], qs: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    qs.iter().map(|&q| quantile_sorted(&v, q)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even() {
        assert_eq!(quantile(&[3.0, 1.0, 2.0], 0.5), 2.0);
        assert_eq!(quantile(&[4.0, 1.0, 2.0, 3.0], 0.5), 2.5);
    }

    #[test]
    fn extremes_are_min_and_max() {
        let v = [9.0, 4.0, 7.0, 1.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 9.0);
    }

    #[test]
    fn type7_interpolation_matches_numpy() {
        // numpy.percentile([1,2,3,4], 25) == 1.75
        assert!((quantile(&[1.0, 2.0, 3.0, 4.0], 0.25) - 1.75).abs() < 1e-12);
        // numpy.percentile([15,20,35,40,50], 40) == 29.0
        assert!((quantile(&[15.0, 20.0, 35.0, 40.0, 50.0], 0.40) - 29.0).abs() < 1e-12);
    }

    #[test]
    fn quartiles_of_known_data() {
        let (q1, q2, q3) = quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!((q1, q2, q3), (2.0, 3.0, 4.0));
    }

    #[test]
    fn empty_is_nan_and_single_is_itself() {
        assert!(quantile(&[], 0.5).is_nan());
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn multi_quantile_matches_single() {
        let v = [5.0, 3.0, 8.0, 1.0, 9.0, 2.0];
        let qs = quantiles(&v, &[0.1, 0.5, 0.9]);
        assert_eq!(qs[0], quantile(&v, 0.1));
        assert_eq!(qs[1], quantile(&v, 0.5));
        assert_eq!(qs[2], quantile(&v, 0.9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_fraction_panics() {
        quantile(&[1.0], 1.5);
    }
}
