//! Tie-aware fractional ranking.

/// Assigns fractional ranks (1-based, ties receive the average of the ranks
/// they span), the convention required by the Spearman correlation.
///
/// Example: `[10, 20, 20, 30]` → `[1.0, 2.5, 2.5, 4.0]`.
pub fn fractional_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        // Find the extent of the tie group starting at sorted position i.
        let mut j = i + 1;
        while j < n && values[idx[j]] == values[idx[i]] {
            j += 1;
        }
        // Average of 1-based ranks i+1 ..= j.
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_ties_is_permutation_rank() {
        assert_eq!(
            fractional_ranks(&[30.0, 10.0, 20.0]),
            vec![3.0, 1.0, 2.0]
        );
    }

    #[test]
    fn ties_get_average_rank() {
        assert_eq!(
            fractional_ranks(&[10.0, 20.0, 20.0, 30.0]),
            vec![1.0, 2.5, 2.5, 4.0]
        );
    }

    #[test]
    fn all_equal_all_same_rank() {
        let r = fractional_ranks(&[5.0; 4]);
        assert_eq!(r, vec![2.5; 4]);
    }

    #[test]
    fn empty_and_single() {
        assert!(fractional_ranks(&[]).is_empty());
        assert_eq!(fractional_ranks(&[42.0]), vec![1.0]);
    }

    #[test]
    fn ranks_sum_is_invariant() {
        // Sum of ranks must always be n(n+1)/2 regardless of ties.
        let v = [3.0, 1.0, 3.0, 2.0, 3.0, 1.0];
        let s: f64 = fractional_ranks(&v).iter().sum();
        assert_eq!(s, (v.len() * (v.len() + 1)) as f64 / 2.0);
    }
}
