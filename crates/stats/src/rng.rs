//! Minimal deterministic PRNG (SplitMix64).
//!
//! SplitMix64 (Steele, Lea & Flood, OOPSLA '14) passes BigCrush, needs only
//! a single `u64` of state, and — crucially for this workspace — makes
//! *hierarchical seeding* trivial: hashing `(master_seed, stream_id)`
//! through one SplitMix64 step yields independent streams, which is how the
//! fleet simulator gives every drive its own reproducible randomness
//! independent of generation order or thread count.

/// SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent stream for `(seed, stream)` pairs.
    ///
    /// The pair is mixed through two SplitMix64 steps so that nearby stream
    /// ids (0, 1, 2, …) do not produce correlated initial states.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        let mut base = SplitMix64::new(seed);
        let a = base.next_u64();
        let mut mix = SplitMix64::new(a ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        SplitMix64::new(mix.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased output.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only retry when low < bound and below threshold.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_sequence() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_values_for_seed_zero() {
        // Reference values from the canonical SplitMix64 implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn streams_differ() {
        let mut s0 = SplitMix64::for_stream(7, 0);
        let mut s1 = SplitMix64::for_stream(7, 1);
        let x: Vec<u64> = (0..8).map(|_| s0.next_u64()).collect();
        let y: Vec<u64> = (0..8).map(|_| s1.next_u64()).collect();
        assert_ne!(x, y);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(123);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut r = SplitMix64::new(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_is_in_range_and_covers() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = r.next_bounded(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
