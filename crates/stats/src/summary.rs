//! Streaming summary statistics (Welford's online algorithm).

/// Numerically stable streaming summary: count, mean, variance, min, max.
///
/// Uses Welford's algorithm so that a six-year, 40M-row trace can be
/// summarized in one pass without catastrophic cancellation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary over a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (Chan et al. parallel merge),
    /// enabling rayon fold/reduce aggregation.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; NaN when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); NaN when fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; +∞ when empty.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation; −∞ when empty.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single() {
        let e = Summary::new();
        assert!(e.mean().is_nan());
        assert!(e.variance().is_nan());
        let s = Summary::of(&[3.0]);
        assert_eq!(s.mean(), 3.0);
        assert!(s.variance().is_nan());
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 100.0).collect();
        let whole = Summary::of(&all);
        let mut a = Summary::of(&all[..313]);
        let b = Summary::of(&all[313..]);
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-6);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[1.0, 2.0]);
        let snapshot = s;
        s.merge(&Summary::new());
        assert_eq!(s, snapshot);
        let mut e = Summary::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn stable_under_large_offsets() {
        // Classic catastrophic-cancellation test: variance of data with a
        // huge common offset.
        let base = 1e9;
        let s = Summary::of(&[base + 4.0, base + 7.0, base + 13.0, base + 16.0]);
        assert!((s.variance() - 30.0).abs() < 1e-6, "{}", s.variance());
    }
}
