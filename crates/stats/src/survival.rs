//! Kaplan–Meier survival estimation for right-censored durations.
//!
//! Figures 3 and 5 of the paper are duration distributions with heavy
//! right-censoring (operational periods that never failed; repairs that
//! never finished). The paper plots raw ECDFs with an "∞" bar; the
//! Kaplan–Meier product-limit estimator is the principled alternative that
//! uses censored observations as partial information instead of a lump,
//! and this library offers both views.

/// One observed duration: its length and whether the terminal event was
/// observed (`event = true`) or the observation was censored.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Duration {
    /// Elapsed time (days).
    pub time: f64,
    /// True if the event (failure / repair completion) occurred at `time`;
    /// false if observation simply stopped there.
    pub event: bool,
}

/// A fitted Kaplan–Meier curve.
#[derive(Debug, Clone, PartialEq)]
pub struct KaplanMeier {
    /// `(time, S(time))` steps at each distinct event time, where `S` is
    /// the estimated survival probability.
    steps: Vec<(f64, f64)>,
    n_events: usize,
    n_censored: usize,
}

impl KaplanMeier {
    /// Fits the product-limit estimator.
    ///
    /// At each distinct event time `t` with `d` events and `n` subjects at
    /// risk, survival multiplies by `(1 − d/n)`. Censored observations
    /// leave the risk set without contributing an event.
    pub fn fit(durations: &[Duration]) -> Self {
        let mut sorted: Vec<Duration> = durations.to_vec();
        sorted.sort_by(|a, b| a.time.total_cmp(&b.time));
        let n_events = sorted.iter().filter(|d| d.event).count();
        let n_censored = sorted.len() - n_events;

        let mut steps = Vec::new();
        let mut at_risk = sorted.len() as f64;
        let mut survival = 1.0;
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].time;
            let mut events = 0.0;
            let mut leaving = 0.0;
            while i < sorted.len() && sorted[i].time == t {
                if sorted[i].event {
                    events += 1.0;
                }
                leaving += 1.0;
                i += 1;
            }
            if events > 0.0 {
                survival *= 1.0 - events / at_risk;
                steps.push((t, survival));
            }
            at_risk -= leaving;
        }
        KaplanMeier {
            steps,
            n_events,
            n_censored,
        }
    }

    /// Fits the product-limit estimator with per-observation weights.
    ///
    /// `weights[i]` scales observation `i`'s contribution to both the
    /// event mass and the risk set — the Horvitz–Thompson form used with
    /// importance-sampled fleets, where each drive carries
    /// `exp(log_weight)`. With all weights equal to `1.0` this reduces
    /// exactly to [`fit`](KaplanMeier::fit) (pinned by a test).
    /// `n_events`/`n_censored` remain raw observation counts.
    pub fn fit_weighted(durations: &[Duration], weights: &[f64]) -> Self {
        assert_eq!(
            durations.len(),
            weights.len(),
            "one weight per duration required"
        );
        let mut sorted: Vec<(Duration, f64)> = durations
            .iter()
            .copied()
            .zip(weights.iter().copied())
            .collect();
        sorted.sort_by(|a, b| a.0.time.total_cmp(&b.0.time));
        let n_events = sorted.iter().filter(|(d, _)| d.event).count();
        let n_censored = sorted.len() - n_events;

        let mut steps = Vec::new();
        let mut at_risk: f64 = sorted.iter().map(|&(_, w)| w).sum();
        let mut survival = 1.0;
        let mut i = 0;
        while i < sorted.len() {
            let t = sorted[i].0.time;
            let mut events = 0.0;
            let mut leaving = 0.0;
            while i < sorted.len() && sorted[i].0.time == t {
                if sorted[i].0.event {
                    events += sorted[i].1;
                }
                leaving += sorted[i].1;
                i += 1;
            }
            if events > 0.0 && at_risk > 0.0 {
                survival *= 1.0 - events / at_risk;
                steps.push((t, survival));
            }
            at_risk -= leaving;
        }
        KaplanMeier {
            steps,
            n_events,
            n_censored,
        }
    }

    /// Survival probability `S(t)` (right-continuous step function).
    pub fn survival(&self, t: f64) -> f64 {
        match self.steps.partition_point(|&(time, _)| time <= t) {
            0 => 1.0,
            k => self.steps[k - 1].1,
        }
    }

    /// Event-probability CDF `F(t) = 1 − S(t)`.
    pub fn cdf(&self, t: f64) -> f64 {
        1.0 - self.survival(t)
    }

    /// The `(time, survival)` steps.
    pub fn steps(&self) -> &[(f64, f64)] {
        &self.steps
    }

    /// Median survival time, if the curve drops below 0.5.
    pub fn median(&self) -> Option<f64> {
        self.steps.iter().find(|&&(_, s)| s <= 0.5).map(|&(t, _)| t)
    }

    /// Number of observed events.
    pub fn n_events(&self) -> usize {
        self.n_events
    }

    /// Number of censored observations.
    pub fn n_censored(&self) -> usize {
        self.n_censored
    }
}

/// Two-sample Kolmogorov–Smirnov statistic: the maximum absolute gap
/// between the empirical CDFs of two samples. Used to quantify the
/// separation between young- and old-failure distributions (Figures 9–10).
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.total_cmp(y));
    sb.sort_by(|x, y| x.total_cmp(y));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    d
}

/// Asymptotic two-sample KS p-value (Smirnov's approximation). Small
/// p ⇒ the samples come from different distributions.
pub fn ks_p_value(d: f64, n_a: usize, n_b: usize) -> f64 {
    let n = (n_a as f64 * n_b as f64) / (n_a as f64 + n_b as f64);
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    // Kolmogorov distribution tail: 2 Σ (−1)^{k−1} e^{−2k²λ²}.
    let mut p = 0.0;
    for k in 1..=100 {
        let term = 2.0 * (-1.0f64).powi(k - 1) * (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        p += term;
        if term.abs() < 1e-12 {
            break;
        }
    }
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(time: f64, event: bool) -> Duration {
        Duration { time, event }
    }

    #[test]
    fn textbook_km_example() {
        // Classic example: events at 6, 7, 10, censored at 9 and 11.
        let data = [
            obs(6.0, true),
            obs(7.0, true),
            obs(9.0, false),
            obs(10.0, true),
            obs(11.0, false),
        ];
        let km = KaplanMeier::fit(&data);
        // S(6) = 4/5 = 0.8; S(7) = 0.8 * 3/4 = 0.6;
        // S(10) = 0.6 * 1/2 = 0.3 (risk set 2 after censoring at 9).
        assert!((km.survival(6.0) - 0.8).abs() < 1e-12);
        assert!((km.survival(7.0) - 0.6).abs() < 1e-12);
        assert!((km.survival(10.0) - 0.3).abs() < 1e-12);
        assert_eq!(km.survival(5.0), 1.0);
        assert_eq!(km.n_events(), 3);
        assert_eq!(km.n_censored(), 2);
    }

    #[test]
    fn no_censoring_matches_ecdf() {
        let times = [1.0, 2.0, 3.0, 4.0];
        let data: Vec<Duration> = times.iter().map(|&t| obs(t, true)).collect();
        let km = KaplanMeier::fit(&data);
        for (k, &t) in times.iter().enumerate() {
            let expected = 1.0 - (k + 1) as f64 / 4.0;
            assert!((km.survival(t) - expected).abs() < 1e-12);
        }
        assert_eq!(km.cdf(4.0), 1.0);
    }

    #[test]
    fn all_censored_stays_at_one() {
        let data: Vec<Duration> = (1..=5).map(|t| obs(t as f64, false)).collect();
        let km = KaplanMeier::fit(&data);
        assert_eq!(km.survival(100.0), 1.0);
        assert_eq!(km.median(), None);
        assert!(km.steps().is_empty());
    }

    #[test]
    fn median_detection() {
        let data: Vec<Duration> = (1..=10).map(|t| obs(t as f64, true)).collect();
        let km = KaplanMeier::fit(&data);
        assert_eq!(km.median(), Some(5.0));
    }

    #[test]
    fn censoring_shifts_survival_up() {
        // Same event times, but extra censored mass: survival at any t
        // must be ≥ the fully-observed version.
        let events: Vec<Duration> = (1..=10).map(|t| obs(t as f64, true)).collect();
        let mut censored = events.clone();
        censored.extend((1..=10).map(|t| obs(t as f64 + 0.5, false)));
        let a = KaplanMeier::fit(&events);
        let b = KaplanMeier::fit(&censored);
        for t in 1..=10 {
            assert!(b.survival(t as f64) >= a.survival(t as f64) - 1e-12);
        }
    }

    #[test]
    fn unit_weights_reduce_to_unweighted_fit() {
        let data = [
            obs(6.0, true),
            obs(7.0, true),
            obs(9.0, false),
            obs(10.0, true),
            obs(11.0, false),
        ];
        let w = vec![1.0; data.len()];
        assert_eq!(KaplanMeier::fit_weighted(&data, &w), KaplanMeier::fit(&data));
    }

    #[test]
    fn integer_weights_equal_repetition() {
        // Weight k behaves like k copies of the observation.
        let data = [obs(2.0, true), obs(4.0, false), obs(6.0, true)];
        let weights = [3.0, 2.0, 1.0];
        let mut expanded = Vec::new();
        for (d, &w) in data.iter().zip(&weights) {
            for _ in 0..w as usize {
                expanded.push(*d);
            }
        }
        let a = KaplanMeier::fit_weighted(&data, &weights);
        let b = KaplanMeier::fit(&expanded);
        assert_eq!(a.steps().len(), b.steps().len());
        for (&(ta, sa), &(tb, sb)) in a.steps().iter().zip(b.steps()) {
            assert_eq!(ta, tb);
            assert!((sa - sb).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_fit_is_scale_invariant() {
        // Only weight *ratios* matter: scaling every weight by a constant
        // leaves the product-limit curve unchanged.
        let data = [
            obs(2.0, true),
            obs(3.0, false),
            obs(5.0, true),
            obs(8.0, true),
            obs(9.0, false),
        ];
        let w1 = [0.5, 2.0, 1.0, 3.0, 0.25];
        let w4: Vec<f64> = w1.iter().map(|w| w * 4.0).collect();
        let a = KaplanMeier::fit_weighted(&data, &w1);
        let b = KaplanMeier::fit_weighted(&data, &w4);
        assert_eq!(a.steps().len(), b.steps().len());
        for (&(ta, sa), &(tb, sb)) in a.steps().iter().zip(b.steps()) {
            assert_eq!(ta, tb);
            assert!((sa - sb).abs() < 1e-12);
        }
    }

    #[test]
    fn ks_identical_samples_is_zero() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!(ks_statistic(&a, &a) < 1e-12);
    }

    #[test]
    fn ks_disjoint_samples_is_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_known_value() {
        // a = {1,2}, b = {1.5, 3}: max gap = 0.5 at x ∈ [1,1.5) or [2,3).
        let d = ks_statistic(&[1.0, 2.0], &[1.5, 3.0]);
        assert!((d - 0.5).abs() < 1e-12, "{d}");
    }

    #[test]
    fn ks_p_value_behaviour() {
        // Identical distributions: large p; disjoint: tiny p.
        assert!(ks_p_value(0.05, 500, 500) > 0.5);
        assert!(ks_p_value(0.9, 500, 500) < 1e-6);
        // p is a probability.
        for d in [0.0, 0.2, 0.5, 1.0] {
            let p = ks_p_value(d, 50, 80);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
