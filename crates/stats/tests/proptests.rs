//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use ssd_stats::{
    fractional_ranks, pearson, quantile, spearman, Ecdf, Histogram, Summary,
};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    #[test]
    fn ecdf_is_monotone_and_bounded(samples in finite_vec(200), xs in finite_vec(20)) {
        let e = Ecdf::new(&samples);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in sorted {
            let v = e.eval(x);
            prop_assert!((0.0..=1.0).contains(&v));
            prop_assert!(v >= prev - 1e-15);
            prev = v;
        }
    }

    #[test]
    fn ecdf_censoring_caps_total_mass(samples in finite_vec(100), censored in 0u64..1000) {
        let e = Ecdf::with_censored(&samples, censored);
        let top = e.eval(f64::MAX);
        let expected = samples.len() as f64 / (samples.len() as f64 + censored as f64);
        prop_assert!((top - expected).abs() < 1e-12);
    }

    #[test]
    fn quantile_is_monotone_in_q(samples in finite_vec(100), q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&samples, lo) <= quantile(&samples, hi) + 1e-12);
    }

    #[test]
    fn quantile_is_bounded_by_extremes(samples in finite_vec(100), q in 0.0f64..1.0) {
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = quantile(&samples, q);
        prop_assert!(v >= min - 1e-12 && v <= max + 1e-12);
    }

    #[test]
    fn ranks_sum_to_gauss_total(samples in finite_vec(150)) {
        let ranks = fractional_ranks(&samples);
        let n = samples.len() as f64;
        let sum: f64 = ranks.iter().sum();
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    }

    #[test]
    fn spearman_is_in_unit_interval(xs in finite_vec(100)) {
        // Build a second variable with some relation to the first.
        let ys: Vec<f64> = xs.iter().map(|v| (v * 0.5).sin() * 10.0).collect();
        if xs.len() >= 2 {
            let s = spearman(&xs, &ys);
            if !s.is_nan() {
                prop_assert!((-1.0..=1.0).contains(&s) || s.abs() - 1.0 < 1e-12);
            }
        }
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(xs in prop::collection::vec(0.1f64..1e3, 3..80)) {
        let ys: Vec<f64> = xs.iter().rev().cloned().collect();
        let base = spearman(&xs, &ys);
        let xs_t: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
        let ys_t: Vec<f64> = ys.iter().map(|v| v * v).collect();
        let t = spearman(&xs_t, &ys_t);
        if !base.is_nan() && !t.is_nan() {
            prop_assert!((base - t).abs() < 1e-9, "{base} vs {t}");
        }
    }

    #[test]
    fn pearson_is_symmetric(xs in finite_vec(60)) {
        let ys: Vec<f64> = xs.iter().map(|v| v * 2.0 + 1.0).collect();
        if xs.len() >= 2 {
            let a = pearson(&xs, &ys);
            let b = pearson(&ys, &xs);
            if !a.is_nan() {
                prop_assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn summary_merge_matches_whole(samples in finite_vec(200), split in 0usize..200) {
        let cut = split.min(samples.len());
        let whole = Summary::of(&samples);
        let mut left = Summary::of(&samples[..cut]);
        left.merge(&Summary::of(&samples[cut..]));
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6);
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn histogram_conserves_mass(samples in finite_vec(300)) {
        let mut h = Histogram::new(-1e6, 2e5, 10);
        for &s in &samples {
            h.push(s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let fsum: f64 = h.fractions().iter().sum();
        prop_assert!((fsum - 1.0).abs() < 1e-9);
    }
}
