//! Property-based tests for the statistics substrate.

use ssd_stats::{fractional_ranks, pearson, quantile, spearman, Ecdf, Histogram, Summary};
use ssd_testkit::{for_each_case, Gen};

fn finite_vec(g: &mut Gen, max_len: usize) -> Vec<f64> {
    g.vec(1, max_len - 1, |g| g.f64_in(-1e6, 1e6))
}

#[test]
fn ecdf_is_monotone_and_bounded() {
    for_each_case("ecdf_is_monotone_and_bounded", 256, |g| {
        let samples = finite_vec(g, 200);
        let xs = finite_vec(g, 20);
        let e = Ecdf::new(&samples);
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = 0.0;
        for x in sorted {
            let v = e.eval(x);
            assert!((0.0..=1.0).contains(&v));
            assert!(v >= prev - 1e-15);
            prev = v;
        }
    });
}

#[test]
fn ecdf_censoring_caps_total_mass() {
    for_each_case("ecdf_censoring_caps_total_mass", 256, |g| {
        let samples = finite_vec(g, 100);
        let censored = g.u64_in(0, 1000);
        let e = Ecdf::with_censored(&samples, censored);
        let top = e.eval(f64::MAX);
        let expected = samples.len() as f64 / (samples.len() as f64 + censored as f64);
        assert!((top - expected).abs() < 1e-12);
    });
}

#[test]
fn quantile_is_monotone_in_q() {
    for_each_case("quantile_is_monotone_in_q", 256, |g| {
        let samples = finite_vec(g, 100);
        let q1 = g.f64_unit();
        let q2 = g.f64_unit();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        assert!(quantile(&samples, lo) <= quantile(&samples, hi) + 1e-12);
    });
}

#[test]
fn quantile_is_bounded_by_extremes() {
    for_each_case("quantile_is_bounded_by_extremes", 256, |g| {
        let samples = finite_vec(g, 100);
        let q = g.f64_unit();
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let v = quantile(&samples, q);
        assert!(v >= min - 1e-12 && v <= max + 1e-12);
    });
}

#[test]
fn ranks_sum_to_gauss_total() {
    for_each_case("ranks_sum_to_gauss_total", 256, |g| {
        let samples = finite_vec(g, 150);
        let ranks = fractional_ranks(&samples);
        let n = samples.len() as f64;
        let sum: f64 = ranks.iter().sum();
        assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
    });
}

#[test]
fn spearman_is_in_unit_interval() {
    for_each_case("spearman_is_in_unit_interval", 256, |g| {
        let xs = finite_vec(g, 100);
        // Build a second variable with some relation to the first.
        let ys: Vec<f64> = xs.iter().map(|v| (v * 0.5).sin() * 10.0).collect();
        if xs.len() >= 2 {
            let s = spearman(&xs, &ys);
            if !s.is_nan() {
                assert!((-1.0..=1.0).contains(&s) || s.abs() - 1.0 < 1e-12);
            }
        }
    });
}

#[test]
fn spearman_invariant_under_monotone_transform() {
    for_each_case("spearman_invariant_under_monotone_transform", 256, |g| {
        let xs = g.vec(3, 79, |g| g.f64_in(0.1, 1e3));
        let ys: Vec<f64> = xs.iter().rev().cloned().collect();
        let base = spearman(&xs, &ys);
        let xs_t: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
        let ys_t: Vec<f64> = ys.iter().map(|v| v * v).collect();
        let t = spearman(&xs_t, &ys_t);
        if !base.is_nan() && !t.is_nan() {
            assert!((base - t).abs() < 1e-9, "{base} vs {t}");
        }
    });
}

#[test]
fn pearson_is_symmetric() {
    for_each_case("pearson_is_symmetric", 256, |g| {
        let xs = finite_vec(g, 60);
        let ys: Vec<f64> = xs.iter().map(|v| v * 2.0 + 1.0).collect();
        if xs.len() >= 2 {
            let a = pearson(&xs, &ys);
            let b = pearson(&ys, &xs);
            if !a.is_nan() {
                assert!((a - b).abs() < 1e-12);
            }
        }
    });
}

#[test]
fn summary_merge_matches_whole() {
    for_each_case("summary_merge_matches_whole", 256, |g| {
        let samples = finite_vec(g, 200);
        let split = g.usize_in(0, 200);
        let cut = split.min(samples.len());
        let whole = Summary::of(&samples);
        let mut left = Summary::of(&samples[..cut]);
        left.merge(&Summary::of(&samples[cut..]));
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-6);
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    });
}

#[test]
fn histogram_conserves_mass() {
    for_each_case("histogram_conserves_mass", 256, |g| {
        let samples = finite_vec(g, 300);
        let mut h = Histogram::new(-1e6, 2e5, 10);
        for &s in &samples {
            h.push(s);
        }
        assert_eq!(h.total(), samples.len() as u64);
        let fsum: f64 = h.fractions().iter().sum();
        assert!((fsum - 1.0).abs() < 1e-9);
    });
}
