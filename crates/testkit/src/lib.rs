//! Deterministic property-testing harness.
//!
//! In-tree substrate for the `proptest` surface this workspace used: a
//! seeded value generator ([`Gen`]) plus a [`for_each_case`] runner that
//! executes a property over many generated cases and, on failure, reports
//! the case index and the exact seed that reproduces it.
//!
//! Unlike proptest there is no shrinking and no persistence file: cases are
//! derived from a fixed per-property seed (hashed from the property name),
//! so every run — local or CI — exercises the identical inputs. A failing
//! case can be replayed directly with [`Gen::from_seed`].

#![forbid(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// SplitMix64 PRNG step (public-domain constants; same generator the
/// simulator uses, duplicated here so the harness has zero dependencies).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of the property name, used as its base seed.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Seeded generator of arbitrary values, one per test case.
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Generator for an explicit seed — use this to replay a failing case
    /// reported by [`for_each_case`].
    pub fn from_seed(seed: u64) -> Self {
        Gen { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform in `[lo, hi)`. Panics if the range is empty.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift bounding (Lemire); bias is negligible for test data.
        lo + ((self.u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64_unit()
    }

    /// Fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.u64() & 1 == 1
    }

    /// True with probability `p`.
    pub fn ratio(&mut self, p: f64) -> bool {
        self.f64_unit() < p
    }

    /// A vector of `len ∈ [min_len, max_len]` values drawn from `f`.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len + 1);
        (0..len).map(|_| f(self)).collect()
    }

    /// `Some(f(g))` half the time, `None` the other half.
    pub fn option<T>(&mut self, f: impl FnOnce(&mut Gen) -> T) -> Option<T> {
        if self.bool() {
            Some(f(self))
        } else {
            None
        }
    }

    /// Pick one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_in(0, items.len())]
    }
}

/// Outcome of a property body: either run to completion (possibly
/// panicking on a failed assertion) or discard the case, proptest's
/// `prop_assume!` semantics. Produced by [`assume!`].
pub enum CaseResult {
    /// The case ran (assertions inside have already panicked on failure).
    Ran,
    /// A precondition failed; the case does not count against the property.
    Discarded,
}

/// Early-return discard for preconditions, mirroring `prop_assume!`.
/// Usable only inside closures returning [`CaseResult`].
#[macro_export]
macro_rules! assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::Discarded;
        }
    };
}

fn base_seed(name: &str) -> u64 {
    // Mix the name hash once so consecutive-integer-like hashes spread out.
    let mut s = fnv1a(name);
    splitmix64(&mut s)
}

fn run<F: Fn(&mut Gen) -> CaseResult>(name: &str, cases: u64, property: F) {
    let base = base_seed(name);
    let mut executed = 0u64;
    let mut attempt = 0u64;
    // Cap total attempts so an over-restrictive precondition fails loudly
    // instead of looping forever (proptest's max_global_rejects analogue).
    let max_attempts = cases.saturating_mul(16).max(256);
    while executed < cases {
        assert!(
            attempt < max_attempts,
            "property {name:?} discarded too many cases ({attempt} attempts \
             for {executed}/{cases} executed); loosen its preconditions"
        );
        let case_seed = base ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        attempt += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            property(&mut Gen::from_seed(case_seed))
        }));
        match outcome {
            Ok(CaseResult::Ran) => executed += 1,
            Ok(CaseResult::Discarded) => {}
            Err(panic) => {
                eprintln!(
                    "property {name:?} failed at case {executed} \
                     (replay with Gen::from_seed({case_seed:#x}))"
                );
                resume_unwind(panic);
            }
        }
    }
}

/// Run `property` over `cases` deterministic generated cases.
///
/// The property asserts with ordinary `assert!`/`assert_eq!`; a panic fails
/// the surrounding test after printing the reproducing seed. For
/// preconditions use [`for_each_case_filtered`] with the [`assume!`] macro.
pub fn for_each_case(name: &str, cases: u64, property: impl Fn(&mut Gen)) {
    run(name, cases, |g| {
        property(g);
        CaseResult::Ran
    });
}

/// [`for_each_case`] for properties with preconditions: the body returns
/// [`CaseResult`], normally via the [`assume!`] macro followed by
/// `CaseResult::Ran`. Discarded cases are regenerated so `cases` real
/// executions always happen.
pub fn for_each_case_filtered(
    name: &str,
    cases: u64,
    property: impl Fn(&mut Gen) -> CaseResult,
) {
    run(name, cases, property);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_per_seed() {
        let mut a = Gen::from_seed(42);
        let mut b = Gen::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::from_seed(7);
        for _ in 0..10_000 {
            let v = g.u64_in(10, 20);
            assert!((10..20).contains(&v));
            let f = g.f64_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let x = g.f64_unit();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn vec_lengths_span_bounds() {
        let mut g = Gen::from_seed(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(g.vec(0, 3, |g| g.bool()).len());
        }
        assert_eq!(seen, [0usize, 1, 2, 3].into_iter().collect());
    }

    #[test]
    fn cases_vary_and_runner_executes_all() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let count = AtomicU64::new(0);
        let values = std::sync::Mutex::new(Vec::new());
        for_each_case("meta_case_variation", 32, |g| {
            count.fetch_add(1, Ordering::Relaxed);
            values.lock().unwrap().push(g.u64());
        });
        assert_eq!(count.load(Ordering::Relaxed), 32);
        let vals = values.into_inner().unwrap();
        let distinct: std::collections::HashSet<_> = vals.iter().collect();
        assert!(distinct.len() > 30, "cases should differ");
    }

    #[test]
    fn discarded_cases_are_regenerated() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let ran = AtomicU64::new(0);
        for_each_case_filtered("meta_assume", 16, |g| {
            let v = g.u64_in(0, 4);
            assume!(v != 0);
            assert!(v > 0);
            ran.fetch_add(1, Ordering::Relaxed);
            CaseResult::Ran
        });
        assert_eq!(ran.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn failing_property_panics() {
        let result = std::panic::catch_unwind(|| {
            for_each_case("meta_failing", 64, |g| {
                assert!(g.u64_in(0, 10) < 9, "deliberate failure");
            });
        });
        assert!(result.is_err());
    }
}
