//! Checked numeric conversions for the workspace's documented 64-bit
//! target policy (`usize`/`isize` are 64 bits wide).
//!
//! The `lossy-cast` lint (see `crates/lint`) flags every `as` cast in
//! `crates/sim` and `crates/ml` whose source type is not syntactically
//! visible, because a bare `x as f64` silently truncates or rounds when
//! `x` outgrows the destination. These helpers spell the source type in
//! their signature, so the conversion is auditable at the call site, and
//! carry `debug_assert!`s for every claim of losslessness.
//!
//! **Release behavior is bit-identical to the `as` cast each helper
//! wraps**: the asserts compile out of release builds, and the cast
//! itself is the same operation. Archive goldens and pinned predictions
//! are therefore unaffected by switching a call site to a helper.
//!
//! Conversions that are lossy *by design* (quantization, hashing,
//! sampling) should not use these helpers: keep the `as` cast and
//! justify it with `// lint:allow(lossy-cast) -- <reason>`.

/// Largest integer magnitude an `f64` holds exactly (2^53).
pub const F64_EXACT_INT: u64 = 1 << 53;

/// Largest integer magnitude an `f32` holds exactly (2^24).
pub const F32_EXACT_INT: u32 = 1 << 24;

/// `u64` → `usize`, lossless under the 64-bit target policy.
#[inline]
pub fn usize_from_u64(x: u64) -> usize {
    debug_assert!(usize::try_from(x).is_ok(), "u64 {x} exceeds usize");
    x as usize
}

/// `u32` → `usize`, always lossless (usize is at least 32 bits here).
#[inline]
pub const fn usize_from_u32(x: u32) -> usize {
    x as usize
}

/// `usize` → `u64`, lossless under the 64-bit target policy.
#[inline]
pub const fn u64_from_usize(x: usize) -> u64 {
    x as u64
}

/// `usize` → `u32`; the caller asserts the value fits (drive counts,
/// day indices, and feature/bin indices all stay far below 2^32).
#[inline]
pub fn u32_from_usize(x: usize) -> u32 {
    debug_assert!(u32::try_from(x).is_ok(), "usize {x} exceeds u32");
    x as u32
}

/// `u64` → `u32`; the caller asserts the value fits.
#[inline]
pub fn u32_from_u64(x: u64) -> u32 {
    debug_assert!(u32::try_from(x).is_ok(), "u64 {x} exceeds u32");
    x as u32
}

/// `usize` → `u16`; the caller asserts the value fits (packed tree and
/// kernel indices).
#[inline]
pub fn u16_from_usize(x: usize) -> u16 {
    debug_assert!(u16::try_from(x).is_ok(), "usize {x} exceeds u16");
    x as u16
}

/// `usize` → `f64`, exact while the value stays below 2^53 — true for
/// every row, drive, and bin count this workspace can hold in memory.
#[inline]
pub fn f64_from_usize(x: usize) -> f64 {
    debug_assert!((x as u64) < F64_EXACT_INT, "usize {x} rounds in f64");
    x as f64
}

/// `usize` → `f32`, exact while the value stays below 2^24 (day counts
/// and small indices used as features).
#[inline]
pub fn f32_from_usize(x: usize) -> f32 {
    debug_assert!((x as u64) < u64::from(F32_EXACT_INT), "usize {x} rounds in f32");
    x as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_round_trips() {
        assert_eq!(usize_from_u64(u64::from(u32::MAX)), 4_294_967_295);
        assert_eq!(usize_from_u32(u32::MAX), 4_294_967_295);
        assert_eq!(u64_from_usize(usize::MAX), u64::MAX);
        assert_eq!(u32_from_usize(4_294_967_295), u32::MAX);
        assert_eq!(u32_from_u64(7), 7);
        assert_eq!(u16_from_usize(65_535), u16::MAX);
    }

    #[test]
    fn float_conversions_are_exact_in_range() {
        assert_eq!(f64_from_usize((1 << 53) - 1) as u64, (1u64 << 53) - 1);
        assert_eq!(f32_from_usize(1 << 24 >> 1), 8_388_608.0);
    }

    #[test]
    #[should_panic(expected = "exceeds u32")]
    #[cfg(debug_assertions)]
    fn narrowing_overflow_is_caught_in_debug() {
        u32_from_usize(1 << 33);
    }

    #[test]
    #[should_panic(expected = "rounds in f32")]
    #[cfg(debug_assertions)]
    fn f32_rounding_is_caught_in_debug() {
        f32_from_usize((1 << 24) + 1);
    }
}
