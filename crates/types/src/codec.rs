//! Compact binary (de)serialization for fleet traces.
//!
//! A 30,000-drive, six-year trace holds tens of millions of daily reports;
//! JSON is convenient for interchange but far too large for archival, so
//! this module provides a simple length-prefixed binary format built on a
//! plain `Vec<u8>` writer and a borrowing byte cursor. Integers use LEB128
//! varint encoding since most counters are small most days (errors are
//! rare — Table 1).
//!
//! The format is versioned by a magic header so stale archives fail loudly
//! rather than decode garbage.

use crate::{
    DailyReport, DriveId, DriveLog, DriveModel, ErrorCounts, ErrorKind, FleetTrace, SwapEvent,
};

/// Magic bytes + format version prefix.
const MAGIC: &[u8; 8] = b"SSDFS\0v1";

/// Bit set in the report flags byte when the drive failed (`status_dead`).
pub const STATUS_DEAD: u8 = 1;

/// Bit set in the report flags byte when the drive latched read-only mode.
pub const STATUS_READ_ONLY: u8 = 1 << 1;

/// Errors arising during decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer did not begin with the expected magic/version header.
    BadMagic,
    /// The buffer ended before a complete value was read.
    UnexpectedEof,
    /// A varint exceeded the width of its target type.
    VarintOverflow,
    /// An enum discriminant was out of range.
    BadDiscriminant(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic/version header"),
            DecodeError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::BadDiscriminant(d) => write!(f, "bad enum discriminant {d}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Borrowing read cursor over an encoded buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(DecodeError::UnexpectedEof)?;
        self.pos += n;
        Ok(slice)
    }
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(buf: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let mut out: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = buf.get_u8()?;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(DecodeError::VarintOverflow);
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn get_varint_u32(buf: &mut Reader<'_>) -> Result<u32, DecodeError> {
    let v = get_varint(buf)?;
    u32::try_from(v).map_err(|_| DecodeError::VarintOverflow)
}

fn encode_report(buf: &mut Vec<u8>, r: &DailyReport) {
    put_varint(buf, u64::from(r.age_days));
    put_varint(buf, r.read_ops);
    put_varint(buf, r.write_ops);
    put_varint(buf, r.erase_ops);
    put_varint(buf, u64::from(r.pe_cycles));
    let flags = u8::from(r.status_dead) | (u8::from(r.status_read_only) << 1);
    buf.push(flags);
    put_varint(buf, u64::from(r.factory_bad_blocks));
    put_varint(buf, u64::from(r.grown_bad_blocks));
    for (_, c) in r.errors.iter() {
        put_varint(buf, c);
    }
}

fn decode_report(buf: &mut Reader<'_>) -> Result<DailyReport, DecodeError> {
    let age_days = get_varint_u32(buf)?;
    let read_ops = get_varint(buf)?;
    let write_ops = get_varint(buf)?;
    let erase_ops = get_varint(buf)?;
    let pe_cycles = get_varint_u32(buf)?;
    let flags = buf.get_u8()?;
    let factory_bad_blocks = get_varint_u32(buf)?;
    let grown_bad_blocks = get_varint_u32(buf)?;
    let mut errors = ErrorCounts::zero();
    for kind in ErrorKind::ALL {
        errors.set(kind, get_varint(buf)?);
    }
    Ok(DailyReport {
        age_days,
        read_ops,
        write_ops,
        erase_ops,
        pe_cycles,
        status_dead: flags & 1 != 0,
        status_read_only: flags & 2 != 0,
        factory_bad_blocks,
        grown_bad_blocks,
        errors,
    })
}

/// Borrowed struct-of-arrays view over one drive's daily reports.
///
/// Each slice is one column of the report table, all of equal length (one
/// entry per report day). This is the zero-copy bridge between an arena of
/// columnar buffers (`ssd_sim::ReportArena`) and the varint codec:
/// [`encode_drive_soa`] walks the columns row by row and emits bytes
/// identical to [`encode_trace`] on the equivalent [`DriveLog`].
#[derive(Debug, Clone, Copy)]
pub struct ReportColumns<'a> {
    /// Report age in days since deployment (`DailyReport::age_days`).
    pub age_days: &'a [u32],
    /// Cumulative read operations.
    pub read_ops: &'a [u64],
    /// Cumulative write operations.
    pub write_ops: &'a [u64],
    /// Cumulative erase operations.
    pub erase_ops: &'a [u64],
    /// Cumulative program/erase cycles.
    pub pe_cycles: &'a [u32],
    /// Packed status bits ([`STATUS_DEAD`] | [`STATUS_READ_ONLY`]).
    pub status_flags: &'a [u8],
    /// Factory bad-block count.
    pub factory_bad_blocks: &'a [u32],
    /// Grown (post-deployment) bad-block count.
    pub grown_bad_blocks: &'a [u32],
    /// One cumulative column per [`ErrorKind`], in `ErrorKind::ALL` order.
    pub errors: [&'a [u64]; ErrorKind::COUNT],
}

impl ReportColumns<'_> {
    /// Number of report rows. All columns share this length.
    pub fn len(&self) -> usize {
        self.age_days.len()
    }

    /// True when the view holds no reports.
    pub fn is_empty(&self) -> bool {
        self.age_days.is_empty()
    }

    fn assert_rectangular(&self) {
        let n = self.age_days.len();
        debug_assert_eq!(self.read_ops.len(), n);
        debug_assert_eq!(self.write_ops.len(), n);
        debug_assert_eq!(self.erase_ops.len(), n);
        debug_assert_eq!(self.pe_cycles.len(), n);
        debug_assert_eq!(self.status_flags.len(), n);
        debug_assert_eq!(self.factory_bad_blocks.len(), n);
        debug_assert_eq!(self.grown_bad_blocks.len(), n);
        for col in &self.errors {
            debug_assert_eq!(col.len(), n);
        }
    }
}

/// Encodes one drive record from a columnar view, byte-identical to the
/// [`DriveLog`] path for the same data.
pub fn encode_drive_soa(
    buf: &mut Vec<u8>,
    id: DriveId,
    model: DriveModel,
    cols: ReportColumns<'_>,
    swaps: &[SwapEvent],
) {
    cols.assert_rectangular();
    put_varint(buf, u64::from(id.0));
    buf.push(model.index() as u8);
    put_varint(buf, cols.len() as u64);
    for i in 0..cols.len() {
        put_varint(buf, u64::from(cols.age_days[i]));
        put_varint(buf, cols.read_ops[i]);
        put_varint(buf, cols.write_ops[i]);
        put_varint(buf, cols.erase_ops[i]);
        put_varint(buf, u64::from(cols.pe_cycles[i]));
        buf.push(cols.status_flags[i]);
        put_varint(buf, u64::from(cols.factory_bad_blocks[i]));
        put_varint(buf, u64::from(cols.grown_bad_blocks[i]));
        for col in &cols.errors {
            put_varint(buf, col[i]);
        }
    }
    encode_swaps(buf, swaps);
}

fn encode_swaps(buf: &mut Vec<u8>, swaps: &[SwapEvent]) {
    put_varint(buf, swaps.len() as u64);
    for s in swaps {
        put_varint(buf, u64::from(s.swap_day));
        match s.reentry_day {
            Some(day) => {
                buf.push(1);
                put_varint(buf, u64::from(day));
            }
            None => buf.push(0),
        }
    }
}

fn encode_drive(buf: &mut Vec<u8>, d: &DriveLog) {
    put_varint(buf, u64::from(d.id.0));
    buf.push(d.model.index() as u8);
    put_varint(buf, d.reports.len() as u64);
    for r in &d.reports {
        encode_report(buf, r);
    }
    encode_swaps(buf, &d.swaps);
}

fn decode_drive(buf: &mut Reader<'_>) -> Result<DriveLog, DecodeError> {
    let id = DriveId(get_varint_u32(buf)?);
    let model_idx = buf.get_u8()?;
    if usize::from(model_idx) >= DriveModel::ALL.len() {
        return Err(DecodeError::BadDiscriminant(model_idx));
    }
    let model = DriveModel::from_index(usize::from(model_idx));
    let n_reports = get_varint(buf)? as usize;
    let mut reports = Vec::with_capacity(n_reports.min(1 << 20));
    for _ in 0..n_reports {
        reports.push(decode_report(buf)?);
    }
    let n_swaps = get_varint(buf)? as usize;
    let mut swaps = Vec::with_capacity(n_swaps.min(1 << 10));
    for _ in 0..n_swaps {
        let swap_day = get_varint_u32(buf)?;
        let reentry_day = match buf.get_u8()? {
            0 => None,
            1 => Some(get_varint_u32(buf)?),
            d => return Err(DecodeError::BadDiscriminant(d)),
        };
        swaps.push(SwapEvent {
            swap_day,
            reentry_day,
        });
    }
    Ok(DriveLog {
        id,
        model,
        reports,
        swaps,
    })
}

/// Incremental archive writer: emits the trace header up front, then
/// appends drive records one at a time without an intermediate
/// [`FleetTrace`] in memory.
///
/// The drive count is part of the header, so it must be declared at
/// construction; [`finish`](TraceEncoder::finish) panics if the number of
/// appended drives disagrees, which turns a silently-corrupt archive into
/// a loud test failure. Drives may arrive from any source — owned logs
/// ([`append_drive`]), columnar arena views ([`append_columns`]), or
/// pre-encoded chunks from parallel workers ([`append_encoded`]) — as long
/// as they are appended in ascending id order (the decoder does not sort).
///
/// [`append_drive`]: TraceEncoder::append_drive
/// [`append_columns`]: TraceEncoder::append_columns
/// [`append_encoded`]: TraceEncoder::append_encoded
#[derive(Debug)]
pub struct TraceEncoder {
    buf: Vec<u8>,
    declared: u64,
    appended: u64,
}

impl TraceEncoder {
    /// Starts an archive for `n_drives` drives over `horizon_days`.
    pub fn new(horizon_days: u32, n_drives: u64) -> Self {
        TraceEncoder::with_capacity(horizon_days, n_drives, 0)
    }

    /// Like [`new`](TraceEncoder::new), pre-reserving `bytes_hint` output
    /// bytes to avoid reallocation on large archives.
    pub fn with_capacity(horizon_days: u32, n_drives: u64, bytes_hint: usize) -> Self {
        let mut buf = Vec::with_capacity(bytes_hint.max(64));
        buf.extend_from_slice(MAGIC);
        put_varint(&mut buf, u64::from(horizon_days));
        put_varint(&mut buf, n_drives);
        TraceEncoder {
            buf,
            declared: n_drives,
            appended: 0,
        }
    }

    /// Appends one drive from an owned log.
    pub fn append_drive(&mut self, d: &DriveLog) {
        encode_drive(&mut self.buf, d);
        self.appended += 1;
    }

    /// Appends one drive from a columnar report view.
    pub fn append_columns(
        &mut self,
        id: DriveId,
        model: DriveModel,
        cols: ReportColumns<'_>,
        swaps: &[SwapEvent],
    ) {
        encode_drive_soa(&mut self.buf, id, model, cols, swaps);
        self.appended += 1;
    }

    /// Appends `n_drives` drive records already encoded by this module
    /// (e.g. a chunk produced by a parallel worker).
    pub fn append_encoded(&mut self, n_drives: u64, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        self.appended += n_drives;
    }

    /// Finalizes the archive.
    ///
    /// # Panics
    /// If the number of appended drives differs from the count declared at
    /// construction (the header would not match the body).
    pub fn finish(self) -> Vec<u8> {
        assert_eq!(
            self.appended, self.declared,
            "TraceEncoder: declared {} drives but appended {}",
            self.declared, self.appended
        );
        self.buf
    }
}

/// Encodes a fleet trace into the compact binary format.
pub fn encode_trace(trace: &FleetTrace) -> Vec<u8> {
    // Rough pre-size: ~40 bytes per report avoids repeated reallocation.
    let mut enc = TraceEncoder::with_capacity(
        trace.horizon_days,
        trace.drives.len() as u64,
        64 + trace.total_drive_days() * 40,
    );
    for d in &trace.drives {
        enc.append_drive(d);
    }
    enc.finish()
}

/// Decodes a fleet trace previously produced by [`encode_trace`].
pub fn decode_trace(buf: &[u8]) -> Result<FleetTrace, DecodeError> {
    let mut buf = Reader::new(buf);
    if buf.remaining() < MAGIC.len() || buf.take(MAGIC.len())? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let horizon_days = get_varint_u32(&mut buf)?;
    let n_drives = get_varint(&mut buf)? as usize;
    let mut drives = Vec::with_capacity(n_drives.min(1 << 22));
    for _ in 0..n_drives {
        drives.push(decode_drive(&mut buf)?);
    }
    Ok(FleetTrace {
        horizon_days,
        drives,
    })
}

/// Serializes a trace to a compact JSON string (interchange / inspection).
pub fn trace_to_json(trace: &FleetTrace) -> Result<String, crate::json::JsonError> {
    Ok(crate::json::to_string(trace))
}

/// Deserializes a trace from JSON.
pub fn trace_from_json(s: &str) -> Result<FleetTrace, crate::json::JsonError> {
    crate::json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> FleetTrace {
        let mut t = FleetTrace::new(2190);
        for i in 0..3u32 {
            let mut d = DriveLog::new(DriveId(i), DriveModel::from_index(i as usize));
            for day in 0..5u32 {
                let mut r = DailyReport::empty(day * 2);
                r.read_ops = u64::from(day) * 1000 + u64::from(i);
                r.write_ops = u64::from(day) * 500;
                r.erase_ops = u64::from(day) * 3;
                r.pe_cycles = day * 7;
                r.status_read_only = day == 4;
                r.grown_bad_blocks = day;
                r.errors.set(ErrorKind::Correctable, u64::from(day) * 12345);
                r.errors.set(ErrorKind::Uncorrectable, u64::from(day % 2));
                d.reports.push(r);
            }
            if i == 1 {
                d.swaps.push(SwapEvent {
                    swap_day: 11,
                    reentry_day: Some(60),
                });
                d.swaps.push(SwapEvent {
                    swap_day: 90,
                    reentry_day: None,
                });
            }
            t.drives.push(d);
        }
        t
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let t = sample_trace();
        let s = trace_to_json(&t).unwrap();
        let back = trace_from_json(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let t = sample_trace();
        let bin = encode_trace(&t).len();
        let json = trace_to_json(&t).unwrap().len();
        assert!(bin * 3 < json, "binary {bin} vs json {json}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode_trace(b"NOTMAGIC!!").unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let cut = &bytes[..bytes.len() - 5];
        assert!(decode_trace(cut).is_err());
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut b = Reader::new(&buf);
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_is_detected() {
        let mut b = Reader::new(&[0xff; 11]);
        assert_eq!(get_varint(&mut b), Err(DecodeError::VarintOverflow));
    }

    /// Columns borrowed from a drive's reports, for SoA-vs-AoS comparison.
    struct Cols {
        age_days: Vec<u32>,
        read_ops: Vec<u64>,
        write_ops: Vec<u64>,
        erase_ops: Vec<u64>,
        pe_cycles: Vec<u32>,
        status_flags: Vec<u8>,
        factory_bad_blocks: Vec<u32>,
        grown_bad_blocks: Vec<u32>,
        errors: [Vec<u64>; ErrorKind::COUNT],
    }

    impl Cols {
        fn from_reports(reports: &[DailyReport]) -> Self {
            let mut c = Cols {
                age_days: Vec::new(),
                read_ops: Vec::new(),
                write_ops: Vec::new(),
                erase_ops: Vec::new(),
                pe_cycles: Vec::new(),
                status_flags: Vec::new(),
                factory_bad_blocks: Vec::new(),
                grown_bad_blocks: Vec::new(),
                errors: std::array::from_fn(|_| Vec::new()),
            };
            for r in reports {
                c.age_days.push(r.age_days);
                c.read_ops.push(r.read_ops);
                c.write_ops.push(r.write_ops);
                c.erase_ops.push(r.erase_ops);
                c.pe_cycles.push(r.pe_cycles);
                c.status_flags.push(
                    u8::from(r.status_dead) * STATUS_DEAD
                        | u8::from(r.status_read_only) * STATUS_READ_ONLY,
                );
                c.factory_bad_blocks.push(r.factory_bad_blocks);
                c.grown_bad_blocks.push(r.grown_bad_blocks);
                for (i, (_, count)) in r.errors.iter().enumerate() {
                    c.errors[i].push(count);
                }
            }
            c
        }

        fn view(&self) -> ReportColumns<'_> {
            ReportColumns {
                age_days: &self.age_days,
                read_ops: &self.read_ops,
                write_ops: &self.write_ops,
                erase_ops: &self.erase_ops,
                pe_cycles: &self.pe_cycles,
                status_flags: &self.status_flags,
                factory_bad_blocks: &self.factory_bad_blocks,
                grown_bad_blocks: &self.grown_bad_blocks,
                errors: std::array::from_fn(|i| self.errors[i].as_slice()),
            }
        }
    }

    #[test]
    fn soa_encoding_matches_aos_per_drive() {
        for d in &sample_trace().drives {
            let mut aos = Vec::new();
            encode_drive(&mut aos, d);
            let cols = Cols::from_reports(&d.reports);
            let mut soa = Vec::new();
            encode_drive_soa(&mut soa, d.id, d.model, cols.view(), &d.swaps);
            assert_eq!(aos, soa, "drive {:?}", d.id);
        }
    }

    #[test]
    fn trace_encoder_assembles_identical_archive() {
        let t = sample_trace();
        let expected = encode_trace(&t);

        // Mixed append paths: owned log, columnar view, pre-encoded bytes.
        let mut enc = TraceEncoder::new(t.horizon_days, t.drives.len() as u64);
        enc.append_drive(&t.drives[0]);
        let cols = Cols::from_reports(&t.drives[1].reports);
        enc.append_columns(t.drives[1].id, t.drives[1].model, cols.view(), &t.drives[1].swaps);
        let mut chunk = Vec::new();
        encode_drive(&mut chunk, &t.drives[2]);
        enc.append_encoded(1, &chunk);
        assert_eq!(enc.finish(), expected);
    }

    #[test]
    #[should_panic(expected = "declared 3 drives but appended 1")]
    fn trace_encoder_panics_on_count_mismatch() {
        let t = sample_trace();
        let mut enc = TraceEncoder::new(t.horizon_days, 3);
        enc.append_drive(&t.drives[0]);
        let _ = enc.finish();
    }

    #[test]
    fn status_flag_masks_match_decoder() {
        let mut r = DailyReport::empty(3);
        r.status_dead = true;
        let mut buf = Vec::new();
        encode_report(&mut buf, &r);
        let back = decode_report(&mut Reader::new(&buf)).unwrap();
        assert!(back.status_dead && !back.status_read_only);

        r.status_dead = false;
        r.status_read_only = true;
        buf.clear();
        encode_report(&mut buf, &r);
        let back = decode_report(&mut Reader::new(&buf)).unwrap();
        assert!(!back.status_dead && back.status_read_only);
    }
}
