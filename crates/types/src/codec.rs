//! Compact binary (de)serialization for fleet traces.
//!
//! A 30,000-drive, six-year trace holds tens of millions of daily reports;
//! JSON is convenient for interchange but far too large for archival, so
//! this module provides a simple length-prefixed binary format built on a
//! plain `Vec<u8>` writer and a borrowing byte cursor. Integers use LEB128
//! varint encoding since most counters are small most days (errors are
//! rare — Table 1).
//!
//! The format is versioned by a magic header so stale archives fail loudly
//! rather than decode garbage.

use crate::{
    DailyReport, DriveId, DriveLog, DriveModel, ErrorCounts, ErrorKind, FleetTrace, SwapEvent,
};

/// Magic bytes + format version prefix.
const MAGIC: &[u8; 8] = b"SSDFS\0v1";

/// Errors arising during decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer did not begin with the expected magic/version header.
    BadMagic,
    /// The buffer ended before a complete value was read.
    UnexpectedEof,
    /// A varint exceeded the width of its target type.
    VarintOverflow,
    /// An enum discriminant was out of range.
    BadDiscriminant(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic/version header"),
            DecodeError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            DecodeError::VarintOverflow => write!(f, "varint overflow"),
            DecodeError::BadDiscriminant(d) => write!(f, "bad enum discriminant {d}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Borrowing read cursor over an encoded buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn get_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let slice = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(DecodeError::UnexpectedEof)?;
        self.pos += n;
        Ok(slice)
    }
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(buf: &mut Reader<'_>) -> Result<u64, DecodeError> {
    let mut out: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = buf.get_u8()?;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(DecodeError::VarintOverflow);
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn get_varint_u32(buf: &mut Reader<'_>) -> Result<u32, DecodeError> {
    let v = get_varint(buf)?;
    u32::try_from(v).map_err(|_| DecodeError::VarintOverflow)
}

fn encode_report(buf: &mut Vec<u8>, r: &DailyReport) {
    put_varint(buf, u64::from(r.age_days));
    put_varint(buf, r.read_ops);
    put_varint(buf, r.write_ops);
    put_varint(buf, r.erase_ops);
    put_varint(buf, u64::from(r.pe_cycles));
    let flags = u8::from(r.status_dead) | (u8::from(r.status_read_only) << 1);
    buf.push(flags);
    put_varint(buf, u64::from(r.factory_bad_blocks));
    put_varint(buf, u64::from(r.grown_bad_blocks));
    for (_, c) in r.errors.iter() {
        put_varint(buf, c);
    }
}

fn decode_report(buf: &mut Reader<'_>) -> Result<DailyReport, DecodeError> {
    let age_days = get_varint_u32(buf)?;
    let read_ops = get_varint(buf)?;
    let write_ops = get_varint(buf)?;
    let erase_ops = get_varint(buf)?;
    let pe_cycles = get_varint_u32(buf)?;
    let flags = buf.get_u8()?;
    let factory_bad_blocks = get_varint_u32(buf)?;
    let grown_bad_blocks = get_varint_u32(buf)?;
    let mut errors = ErrorCounts::zero();
    for kind in ErrorKind::ALL {
        errors.set(kind, get_varint(buf)?);
    }
    Ok(DailyReport {
        age_days,
        read_ops,
        write_ops,
        erase_ops,
        pe_cycles,
        status_dead: flags & 1 != 0,
        status_read_only: flags & 2 != 0,
        factory_bad_blocks,
        grown_bad_blocks,
        errors,
    })
}

fn encode_drive(buf: &mut Vec<u8>, d: &DriveLog) {
    put_varint(buf, u64::from(d.id.0));
    buf.push(d.model.index() as u8);
    put_varint(buf, d.reports.len() as u64);
    for r in &d.reports {
        encode_report(buf, r);
    }
    put_varint(buf, d.swaps.len() as u64);
    for s in &d.swaps {
        put_varint(buf, u64::from(s.swap_day));
        match s.reentry_day {
            Some(day) => {
                buf.push(1);
                put_varint(buf, u64::from(day));
            }
            None => buf.push(0),
        }
    }
}

fn decode_drive(buf: &mut Reader<'_>) -> Result<DriveLog, DecodeError> {
    let id = DriveId(get_varint_u32(buf)?);
    let model_idx = buf.get_u8()?;
    if usize::from(model_idx) >= DriveModel::ALL.len() {
        return Err(DecodeError::BadDiscriminant(model_idx));
    }
    let model = DriveModel::from_index(usize::from(model_idx));
    let n_reports = get_varint(buf)? as usize;
    let mut reports = Vec::with_capacity(n_reports.min(1 << 20));
    for _ in 0..n_reports {
        reports.push(decode_report(buf)?);
    }
    let n_swaps = get_varint(buf)? as usize;
    let mut swaps = Vec::with_capacity(n_swaps.min(1 << 10));
    for _ in 0..n_swaps {
        let swap_day = get_varint_u32(buf)?;
        let reentry_day = match buf.get_u8()? {
            0 => None,
            1 => Some(get_varint_u32(buf)?),
            d => return Err(DecodeError::BadDiscriminant(d)),
        };
        swaps.push(SwapEvent {
            swap_day,
            reentry_day,
        });
    }
    Ok(DriveLog {
        id,
        model,
        reports,
        swaps,
    })
}

/// Encodes a fleet trace into the compact binary format.
pub fn encode_trace(trace: &FleetTrace) -> Vec<u8> {
    // Rough pre-size: ~40 bytes per report avoids repeated reallocation.
    let mut buf = Vec::with_capacity(64 + trace.total_drive_days() * 40);
    buf.extend_from_slice(MAGIC);
    put_varint(&mut buf, u64::from(trace.horizon_days));
    put_varint(&mut buf, trace.drives.len() as u64);
    for d in &trace.drives {
        encode_drive(&mut buf, d);
    }
    buf
}

/// Decodes a fleet trace previously produced by [`encode_trace`].
pub fn decode_trace(buf: &[u8]) -> Result<FleetTrace, DecodeError> {
    let mut buf = Reader::new(buf);
    if buf.remaining() < MAGIC.len() || buf.take(MAGIC.len())? != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let horizon_days = get_varint_u32(&mut buf)?;
    let n_drives = get_varint(&mut buf)? as usize;
    let mut drives = Vec::with_capacity(n_drives.min(1 << 22));
    for _ in 0..n_drives {
        drives.push(decode_drive(&mut buf)?);
    }
    Ok(FleetTrace {
        horizon_days,
        drives,
    })
}

/// Serializes a trace to a compact JSON string (interchange / inspection).
pub fn trace_to_json(trace: &FleetTrace) -> Result<String, crate::json::JsonError> {
    Ok(crate::json::to_string(trace))
}

/// Deserializes a trace from JSON.
pub fn trace_from_json(s: &str) -> Result<FleetTrace, crate::json::JsonError> {
    crate::json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> FleetTrace {
        let mut t = FleetTrace::new(2190);
        for i in 0..3u32 {
            let mut d = DriveLog::new(DriveId(i), DriveModel::from_index(i as usize));
            for day in 0..5u32 {
                let mut r = DailyReport::empty(day * 2);
                r.read_ops = u64::from(day) * 1000 + u64::from(i);
                r.write_ops = u64::from(day) * 500;
                r.erase_ops = u64::from(day) * 3;
                r.pe_cycles = day * 7;
                r.status_read_only = day == 4;
                r.grown_bad_blocks = day;
                r.errors.set(ErrorKind::Correctable, u64::from(day) * 12345);
                r.errors.set(ErrorKind::Uncorrectable, u64::from(day % 2));
                d.reports.push(r);
            }
            if i == 1 {
                d.swaps.push(SwapEvent {
                    swap_day: 11,
                    reentry_day: Some(60),
                });
                d.swaps.push(SwapEvent {
                    swap_day: 90,
                    reentry_day: None,
                });
            }
            t.drives.push(d);
        }
        t
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let t = sample_trace();
        let s = trace_to_json(&t).unwrap();
        let back = trace_from_json(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let t = sample_trace();
        let bin = encode_trace(&t).len();
        let json = trace_to_json(&t).unwrap().len();
        assert!(bin * 3 < json, "binary {bin} vs json {json}");
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = decode_trace(b"NOTMAGIC!!").unwrap_err();
        assert_eq!(err, DecodeError::BadMagic);
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let cut = &bytes[..bytes.len() - 5];
        assert!(decode_trace(cut).is_err());
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut b = Reader::new(&buf);
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_is_detected() {
        let mut b = Reader::new(&[0xff; 11]);
        assert_eq!(get_varint(&mut b), Err(DecodeError::VarintOverflow));
    }
}
