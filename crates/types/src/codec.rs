//! Compact binary (de)serialization for fleet traces — resident and
//! streaming.
//!
//! A 30,000-drive, six-year trace holds tens of millions of daily reports;
//! JSON is convenient for interchange but far too large for archival, so
//! this module provides a simple length-prefixed binary format built on
//! LEB128 varints (most counters are small most days — errors are rare,
//! Table 1).
//!
//! The format is versioned by a magic header so stale archives fail loudly
//! rather than decode garbage.
//!
//! ## Wire framing
//!
//! ```text
//! archive   := MAGIC("SSDFS\0v2") varint(horizon_days) varint(n_drives) drive*
//! drive     := varint(id) u8(model) varint(bits(log_weight))
//!              varint(n_reports) report* swaps
//! report    := varint(age) varint(read) varint(write) varint(erase)
//!              varint(pe) u8(flags) varint(fbb) varint(gbb)
//!              varint(err[0]) .. varint(err[9])
//! swaps     := varint(n_swaps) (varint(swap_day) u8(has_reentry)
//!              [varint(reentry_day)])*
//! ```
//!
//! `bits(log_weight)` is the IEEE-754 bit pattern of the drive's
//! importance-sampling log-weight ([`DriveLog::log_weight`]); uniformly
//! sampled drives carry `+0.0`, whose bit pattern is `0` — a single
//! varint byte. Decoders also accept the previous `"SSDFS\0v1"` framing
//! (identical except the drive record has no weight field); v1 drives
//! decode with log-weight `0.0`. Encoders always write v2.
//!
//! There are no per-drive length prefixes or sync markers: records are
//! self-delimiting, so the archive can only be read front to back — which
//! is exactly the shape streaming consumption needs.
//!
//! ## Streaming
//!
//! Multi-GB archives never have to be resident:
//!
//! * [`TraceDecoder`] pulls drives one at a time from any [`Read`] source
//!   through a fixed-size refill buffer. [`next_drive_into`] reuses one
//!   caller-owned [`DriveLog`]'s report/swap buffers between drives,
//!   [`read_chunk_into`] amortizes that over drive chunks, and
//!   [`next_drive_columns`] lends a borrowed columnar
//!   [`ReportColumns`] view decoded into internal buffers that are
//!   recycled between drives.
//! * [`TraceEncoder`] is generic over a [`Write`] sink: each appended
//!   drive is serialized into an internal scratch buffer (reused between
//!   drives) and flushed to the sink, so peak memory is one drive record
//!   regardless of archive size. `TraceEncoder<Vec<u8>>` keeps the legacy
//!   infallible in-memory API.
//!
//! The resident entry points [`encode_trace`]/[`decode_trace`] are thin
//! wrappers over the same core and remain byte-compatible with archives
//! produced before the streaming redesign.
//!
//! ## Example
//!
//! Encode two drives into an in-memory archive, then stream them back one
//! at a time through a reusable `DriveLog` buffer:
//!
//! ```
//! use ssd_types::codec::{TraceDecoder, TraceEncoder};
//! use ssd_types::{DailyReport, DriveId, DriveLog, DriveModel};
//!
//! let mut enc = TraceEncoder::new(30, 2);
//! for id in 0..2u32 {
//!     let mut drive = DriveLog::new(DriveId(id), DriveModel::MlcA);
//!     drive.reports.push(DailyReport::empty(3));
//!     enc.append_drive(&drive).unwrap();
//! }
//! let bytes = enc.finish();
//!
//! let mut dec = TraceDecoder::new(&bytes[..]).unwrap();
//! assert_eq!(dec.horizon_days(), 30);
//! let mut log = DriveLog::new(DriveId(0), DriveModel::MlcA);
//! let mut drives = 0;
//! while dec.next_drive_into(&mut log).unwrap() {
//!     assert_eq!(log.reports.len(), 1);
//!     drives += 1;
//! }
//! assert_eq!(drives, 2);
//! ```
//!
//! [`next_drive_into`]: TraceDecoder::next_drive_into
//! [`read_chunk_into`]: TraceDecoder::read_chunk_into
//! [`next_drive_columns`]: TraceDecoder::next_drive_columns

use crate::{
    DailyReport, DriveId, DriveLog, DriveModel, ErrorCounts, ErrorKind, FleetTrace, SwapEvent,
};
use std::io::{Read, Write};

/// Magic bytes + format version prefix (current version, always written).
const MAGIC: &[u8; 8] = b"SSDFS\0v2";

/// Previous format version: identical framing minus the per-drive
/// log-weight field. Still accepted on decode.
const MAGIC_V1: &[u8; 8] = b"SSDFS\0v1";

/// Archive format version, detected from the magic header on decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Version {
    /// Weightless drive records.
    V1,
    /// Drive records carry an importance-sampling log-weight.
    V2,
}

/// Bit set in the report flags byte when the drive failed (`status_dead`).
pub const STATUS_DEAD: u8 = 1;

/// Bit set in the report flags byte when the drive latched read-only mode.
pub const STATUS_READ_ONLY: u8 = 1 << 1;

/// Default refill-buffer capacity for streaming decode (64 KiB).
const STREAM_BUF_BYTES: usize = 64 * 1024;

/// Errors arising during decode.
///
/// Every variant (except a short/garbled header) carries the absolute byte
/// offset into the archive at which decoding failed, so a corrupt
/// multi-GB archive reports *where* it broke, not just that it did.
///
/// The enum is `#[non_exhaustive]`: match with a wildcard arm so future
/// decoders can add failure modes without breaking downstream crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecodeError {
    /// The input did not begin with the expected magic/version header.
    BadMagic {
        /// The header bytes actually read (shorter than the magic if the
        /// input ended early).
        got: Vec<u8>,
    },
    /// The input ended before a complete value was read.
    UnexpectedEof {
        /// Byte offset at which more input was expected.
        offset: u64,
    },
    /// A varint exceeded the width of its target type.
    VarintOverflow {
        /// Byte offset of the overflowing varint's final byte.
        offset: u64,
    },
    /// An enum discriminant was out of range.
    BadDiscriminant {
        /// Byte offset of the offending byte.
        offset: u64,
        /// What was being decoded (e.g. `"drive model"`).
        expected: &'static str,
        /// The out-of-range value found.
        got: u8,
    },
    /// The underlying [`Read`] source failed (streaming decode only).
    Io {
        /// Byte offset at which the read failed.
        offset: u64,
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// The I/O error message.
        message: String,
    },
}

impl DecodeError {
    /// The archive byte offset the error is anchored at, if any
    /// (`BadMagic` has none — the whole header is implicated).
    pub fn offset(&self) -> Option<u64> {
        match self {
            DecodeError::BadMagic { .. } => None,
            DecodeError::UnexpectedEof { offset }
            | DecodeError::VarintOverflow { offset }
            | DecodeError::BadDiscriminant { offset, .. }
            | DecodeError::Io { offset, .. } => Some(*offset),
        }
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::BadMagic { got } => {
                write!(f, "bad magic/version header: expected {MAGIC:?}, got {got:?}")
            }
            DecodeError::UnexpectedEof { offset } => {
                write!(f, "unexpected end of input at byte {offset}")
            }
            DecodeError::VarintOverflow { offset } => {
                write!(f, "varint overflow at byte {offset}")
            }
            DecodeError::BadDiscriminant {
                offset,
                expected,
                got,
            } => write!(f, "bad {expected} discriminant {got} at byte {offset}"),
            DecodeError::Io {
                offset,
                kind,
                message,
            } => write!(f, "io error ({kind:?}) at byte {offset}: {message}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Byte source abstraction shared by the in-memory and streaming decode
/// paths: a fallible byte iterator that knows its absolute offset.
trait Src {
    /// Next byte, or `UnexpectedEof`/`Io` anchored at the current offset.
    fn next_u8(&mut self) -> Result<u8, DecodeError>;

    /// Absolute offset of the next unread byte.
    fn offset(&self) -> u64;
}

/// Borrowing read cursor over a fully-resident encoded buffer.
struct SliceSrc<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceSrc<'a> {
    fn new(buf: &'a [u8]) -> Self {
        SliceSrc { buf, pos: 0 }
    }
}

impl Src for SliceSrc<'_> {
    #[inline]
    fn next_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof {
            offset: self.pos as u64,
        })?;
        self.pos += 1;
        Ok(b)
    }

    #[inline]
    fn offset(&self) -> u64 {
        self.pos as u64
    }
}

/// Buffered byte source over an arbitrary [`Read`]er. Holds one fixed
/// refill buffer; never buffers more than `buf.len()` bytes at a time.
#[derive(Debug)]
struct StreamSrc<R> {
    reader: R,
    buf: Box<[u8]>,
    pos: usize,
    len: usize,
    /// Absolute offset of `buf[0]` within the archive.
    base: u64,
}

impl<R: Read> StreamSrc<R> {
    fn new(reader: R, capacity: usize) -> Self {
        StreamSrc {
            reader,
            buf: vec![0u8; capacity.max(16)].into_boxed_slice(),
            pos: 0,
            len: 0,
            base: 0,
        }
    }

    /// Refills the buffer from the reader. `self.len == 0` afterwards
    /// means clean EOF.
    fn refill(&mut self) -> Result<(), DecodeError> {
        self.base += self.len as u64;
        self.pos = 0;
        self.len = 0;
        loop {
            match self.reader.read(&mut self.buf) {
                Ok(n) => {
                    self.len = n;
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    return Err(DecodeError::Io {
                        offset: self.base,
                        kind: e.kind(),
                        message: e.to_string(),
                    })
                }
            }
        }
    }
}

impl<R: Read> Src for StreamSrc<R> {
    #[inline]
    fn next_u8(&mut self) -> Result<u8, DecodeError> {
        if self.pos == self.len {
            self.refill()?;
            if self.len == 0 {
                return Err(DecodeError::UnexpectedEof { offset: self.base });
            }
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    #[inline]
    fn offset(&self) -> u64 {
        self.base + self.pos as u64
    }
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint<S: Src>(src: &mut S) -> Result<u64, DecodeError> {
    let mut out: u64 = 0;
    let mut shift = 0u32;
    loop {
        let at = src.offset();
        let byte = src.next_u8()?;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(DecodeError::VarintOverflow { offset: at });
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn get_varint_u32<S: Src>(src: &mut S) -> Result<u32, DecodeError> {
    let at = src.offset();
    let v = get_varint(src)?;
    u32::try_from(v).map_err(|_| DecodeError::VarintOverflow { offset: at })
}

/// Reads and checks the magic/version header, returning the detected
/// format version. A source that ends before the full magic is a
/// `BadMagic` (there is no archive here at all), not an `UnexpectedEof`.
fn expect_magic<S: Src>(src: &mut S) -> Result<Version, DecodeError> {
    let mut got = Vec::with_capacity(MAGIC.len());
    for _ in 0..MAGIC.len() {
        match src.next_u8() {
            Ok(b) => got.push(b),
            Err(DecodeError::UnexpectedEof { .. }) => {
                return Err(DecodeError::BadMagic { got })
            }
            Err(e) => return Err(e),
        }
    }
    if got == MAGIC {
        Ok(Version::V2)
    } else if got == MAGIC_V1 {
        Ok(Version::V1)
    } else {
        Err(DecodeError::BadMagic { got })
    }
}

fn encode_report(buf: &mut Vec<u8>, r: &DailyReport) {
    put_varint(buf, u64::from(r.age_days));
    put_varint(buf, r.read_ops);
    put_varint(buf, r.write_ops);
    put_varint(buf, r.erase_ops);
    put_varint(buf, u64::from(r.pe_cycles));
    let flags = u8::from(r.status_dead) | (u8::from(r.status_read_only) << 1);
    buf.push(flags);
    put_varint(buf, u64::from(r.factory_bad_blocks));
    put_varint(buf, u64::from(r.grown_bad_blocks));
    for (_, c) in r.errors.iter() {
        put_varint(buf, c);
    }
}

fn decode_report<S: Src>(src: &mut S) -> Result<DailyReport, DecodeError> {
    let age_days = get_varint_u32(src)?;
    let read_ops = get_varint(src)?;
    let write_ops = get_varint(src)?;
    let erase_ops = get_varint(src)?;
    let pe_cycles = get_varint_u32(src)?;
    let flags = src.next_u8()?;
    let factory_bad_blocks = get_varint_u32(src)?;
    let grown_bad_blocks = get_varint_u32(src)?;
    let mut errors = ErrorCounts::zero();
    for kind in ErrorKind::ALL {
        errors.set(kind, get_varint(src)?);
    }
    Ok(DailyReport {
        age_days,
        read_ops,
        write_ops,
        erase_ops,
        pe_cycles,
        status_dead: flags & 1 != 0,
        status_read_only: flags & 2 != 0,
        factory_bad_blocks,
        grown_bad_blocks,
        errors,
    })
}

/// Borrowed struct-of-arrays view over one drive's daily reports.
///
/// Each slice is one column of the report table, all of equal length (one
/// entry per report day). This is the zero-copy bridge between columnar
/// buffers and the varint codec: on the encode side
/// [`encode_drive_soa`] walks the columns row by row and emits bytes
/// identical to [`encode_trace`] on the equivalent [`DriveLog`]; on the
/// decode side [`TraceDecoder::next_drive_columns`] lends this view over
/// internal buffers.
#[derive(Debug, Clone, Copy)]
pub struct ReportColumns<'a> {
    /// Report age in days since deployment (`DailyReport::age_days`).
    pub age_days: &'a [u32],
    /// Cumulative read operations.
    pub read_ops: &'a [u64],
    /// Cumulative write operations.
    pub write_ops: &'a [u64],
    /// Cumulative erase operations.
    pub erase_ops: &'a [u64],
    /// Cumulative program/erase cycles.
    pub pe_cycles: &'a [u32],
    /// Packed status bits ([`STATUS_DEAD`] | [`STATUS_READ_ONLY`]).
    pub status_flags: &'a [u8],
    /// Factory bad-block count.
    pub factory_bad_blocks: &'a [u32],
    /// Grown (post-deployment) bad-block count.
    pub grown_bad_blocks: &'a [u32],
    /// One cumulative column per [`ErrorKind`], in `ErrorKind::ALL` order.
    pub errors: [&'a [u64]; ErrorKind::COUNT],
}

impl ReportColumns<'_> {
    /// Number of report rows. All columns share this length.
    pub fn len(&self) -> usize {
        self.age_days.len()
    }

    /// True when the view holds no reports.
    pub fn is_empty(&self) -> bool {
        self.age_days.is_empty()
    }

    fn assert_rectangular(&self) {
        let n = self.age_days.len();
        debug_assert_eq!(self.read_ops.len(), n);
        debug_assert_eq!(self.write_ops.len(), n);
        debug_assert_eq!(self.erase_ops.len(), n);
        debug_assert_eq!(self.pe_cycles.len(), n);
        debug_assert_eq!(self.status_flags.len(), n);
        debug_assert_eq!(self.factory_bad_blocks.len(), n);
        debug_assert_eq!(self.grown_bad_blocks.len(), n);
        for col in &self.errors {
            debug_assert_eq!(col.len(), n);
        }
    }
}

/// Encodes one drive record from a columnar view, byte-identical to the
/// [`DriveLog`] path for the same data. `log_weight` is the drive's
/// importance-sampling log-weight (`0.0` for uniform sampling).
pub fn encode_drive_soa(
    buf: &mut Vec<u8>,
    id: DriveId,
    model: DriveModel,
    log_weight: f64,
    cols: ReportColumns<'_>,
    swaps: &[SwapEvent],
) {
    cols.assert_rectangular();
    put_varint(buf, u64::from(id.0));
    buf.push(model.index() as u8);
    put_varint(buf, log_weight.to_bits());
    put_varint(buf, cols.len() as u64);
    for i in 0..cols.len() {
        put_varint(buf, u64::from(cols.age_days[i]));
        put_varint(buf, cols.read_ops[i]);
        put_varint(buf, cols.write_ops[i]);
        put_varint(buf, cols.erase_ops[i]);
        put_varint(buf, u64::from(cols.pe_cycles[i]));
        buf.push(cols.status_flags[i]);
        put_varint(buf, u64::from(cols.factory_bad_blocks[i]));
        put_varint(buf, u64::from(cols.grown_bad_blocks[i]));
        for col in &cols.errors {
            put_varint(buf, col[i]);
        }
    }
    encode_swaps(buf, swaps);
}

fn encode_swaps(buf: &mut Vec<u8>, swaps: &[SwapEvent]) {
    put_varint(buf, swaps.len() as u64);
    for s in swaps {
        put_varint(buf, u64::from(s.swap_day));
        match s.reentry_day {
            Some(day) => {
                buf.push(1);
                put_varint(buf, u64::from(day));
            }
            None => buf.push(0),
        }
    }
}

fn encode_drive(buf: &mut Vec<u8>, d: &DriveLog) {
    put_varint(buf, u64::from(d.id.0));
    buf.push(d.model.index() as u8);
    put_varint(buf, d.log_weight.to_bits());
    put_varint(buf, d.reports.len() as u64);
    for r in &d.reports {
        encode_report(buf, r);
    }
    encode_swaps(buf, &d.swaps);
}

fn decode_model<S: Src>(src: &mut S) -> Result<DriveModel, DecodeError> {
    let at = src.offset();
    let model_idx = src.next_u8()?;
    if usize::from(model_idx) >= DriveModel::ALL.len() {
        return Err(DecodeError::BadDiscriminant {
            offset: at,
            expected: "drive model",
            got: model_idx,
        });
    }
    Ok(DriveModel::from_index(usize::from(model_idx)))
}

fn decode_swaps_into<S: Src>(src: &mut S, swaps: &mut Vec<SwapEvent>) -> Result<(), DecodeError> {
    let n_swaps = get_varint(src)? as usize;
    swaps.reserve(n_swaps.min(1 << 10));
    for _ in 0..n_swaps {
        let swap_day = get_varint_u32(src)?;
        let at = src.offset();
        let reentry_day = match src.next_u8()? {
            0 => None,
            1 => Some(get_varint_u32(src)?),
            d => {
                return Err(DecodeError::BadDiscriminant {
                    offset: at,
                    expected: "swap re-entry tag",
                    got: d,
                })
            }
        };
        swaps.push(SwapEvent {
            swap_day,
            reentry_day,
        });
    }
    Ok(())
}

/// Decodes one drive record into `log`, reusing its report/swap buffer
/// capacity. On error the log's contents are unspecified.
fn decode_drive_into<S: Src>(
    src: &mut S,
    version: Version,
    log: &mut DriveLog,
) -> Result<(), DecodeError> {
    log.reports.clear();
    log.swaps.clear();
    log.id = DriveId(get_varint_u32(src)?);
    log.model = decode_model(src)?;
    log.log_weight = match version {
        Version::V1 => 0.0,
        Version::V2 => f64::from_bits(get_varint(src)?),
    };
    let n_reports = get_varint(src)? as usize;
    log.reports.reserve(n_reports.min(1 << 20));
    for _ in 0..n_reports {
        log.reports.push(decode_report(src)?);
    }
    decode_swaps_into(src, &mut log.swaps)
}

/// Internal columnar buffers the streaming decoder recycles between
/// drives for [`TraceDecoder::next_drive_columns`].
#[derive(Debug, Default)]
struct ColumnStore {
    age_days: Vec<u32>,
    read_ops: Vec<u64>,
    write_ops: Vec<u64>,
    erase_ops: Vec<u64>,
    pe_cycles: Vec<u32>,
    status_flags: Vec<u8>,
    factory_bad_blocks: Vec<u32>,
    grown_bad_blocks: Vec<u32>,
    errors: [Vec<u64>; ErrorKind::COUNT],
    swaps: Vec<SwapEvent>,
    log_weight: f64,
}

impl ColumnStore {
    fn clear(&mut self) {
        self.log_weight = 0.0;
        self.age_days.clear();
        self.read_ops.clear();
        self.write_ops.clear();
        self.erase_ops.clear();
        self.pe_cycles.clear();
        self.status_flags.clear();
        self.factory_bad_blocks.clear();
        self.grown_bad_blocks.clear();
        for col in &mut self.errors {
            col.clear();
        }
        self.swaps.clear();
    }

    fn view(&self) -> ReportColumns<'_> {
        ReportColumns {
            age_days: &self.age_days,
            read_ops: &self.read_ops,
            write_ops: &self.write_ops,
            erase_ops: &self.erase_ops,
            pe_cycles: &self.pe_cycles,
            status_flags: &self.status_flags,
            factory_bad_blocks: &self.factory_bad_blocks,
            grown_bad_blocks: &self.grown_bad_blocks,
            errors: std::array::from_fn(|i| self.errors[i].as_slice()),
        }
    }
}

/// Decodes one drive record straight into columnar buffers (no
/// `DailyReport` structs), returning its identity.
fn decode_drive_columns_into<S: Src>(
    src: &mut S,
    version: Version,
    cols: &mut ColumnStore,
) -> Result<(DriveId, DriveModel), DecodeError> {
    cols.clear();
    let id = DriveId(get_varint_u32(src)?);
    let model = decode_model(src)?;
    cols.log_weight = match version {
        Version::V1 => 0.0,
        Version::V2 => f64::from_bits(get_varint(src)?),
    };
    let n_reports = get_varint(src)? as usize;
    for _ in 0..n_reports {
        cols.age_days.push(get_varint_u32(src)?);
        cols.read_ops.push(get_varint(src)?);
        cols.write_ops.push(get_varint(src)?);
        cols.erase_ops.push(get_varint(src)?);
        cols.pe_cycles.push(get_varint_u32(src)?);
        cols.status_flags.push(src.next_u8()?);
        cols.factory_bad_blocks.push(get_varint_u32(src)?);
        cols.grown_bad_blocks.push(get_varint_u32(src)?);
        for col in &mut cols.errors {
            col.push(get_varint(src)?);
        }
    }
    decode_swaps_into(src, &mut cols.swaps)?;
    Ok((id, model))
}

/// One decoded drive, lent as a borrowed columnar view by
/// [`TraceDecoder::next_drive_columns`]. Valid until the next decoder
/// call; the backing buffers are recycled between drives.
#[derive(Debug, Clone, Copy)]
pub struct DriveColumns<'a> {
    /// Drive identifier.
    pub id: DriveId,
    /// Drive model.
    pub model: DriveModel,
    /// Struct-of-arrays view over the drive's daily reports.
    pub columns: ReportColumns<'a>,
    /// The drive's swap events.
    pub swaps: &'a [SwapEvent],
    /// Importance-sampling log-weight (`0.0` in legacy v1 archives).
    pub log_weight: f64,
}

/// Streaming archive reader: pulls drives one at a time from any
/// [`Read`] source at constant memory.
///
/// The header (magic, horizon, declared drive count) is read eagerly by
/// [`new`](TraceDecoder::new); drives are then decoded on demand:
///
/// * [`next_drive_into`](TraceDecoder::next_drive_into) — fold-style
///   consumption reusing one caller-owned [`DriveLog`]; the decoder's
///   buffer-reuse contract means a full pass over a multi-GB archive
///   allocates only one drive's worth of reports at a time.
/// * [`read_chunk_into`](TraceDecoder::read_chunk_into) — chunked
///   consumption into a recycled `Vec<DriveLog>`.
/// * [`next_drive_columns`](TraceDecoder::next_drive_columns) — borrowed
///   [`ReportColumns`] views for columnar folds, no per-report structs.
/// * The [`Iterator`] impl yields owned `Result<DriveLog, DecodeError>`
///   for convenience when allocation per drive is acceptable.
///
/// Exactly the declared number of drives is decoded; trailing bytes after
/// the last drive are ignored, matching [`decode_trace`]. A source that
/// ends mid-record yields a [`DecodeError::UnexpectedEof`] carrying the
/// byte offset of the break.
#[derive(Debug)]
pub struct TraceDecoder<R> {
    src: StreamSrc<R>,
    version: Version,
    horizon_days: u32,
    n_drives: u64,
    decoded: u64,
    cols: ColumnStore,
}

impl<R: Read> TraceDecoder<R> {
    /// Opens an archive stream, reading and validating the header.
    pub fn new(reader: R) -> Result<Self, DecodeError> {
        TraceDecoder::with_buffer_capacity(reader, STREAM_BUF_BYTES)
    }

    /// Like [`new`](TraceDecoder::new) with an explicit refill-buffer
    /// capacity in bytes (the decoder's only size-dependent allocation).
    pub fn with_buffer_capacity(reader: R, capacity: usize) -> Result<Self, DecodeError> {
        let mut src = StreamSrc::new(reader, capacity);
        let version = expect_magic(&mut src)?;
        let horizon_days = get_varint_u32(&mut src)?;
        let n_drives = get_varint(&mut src)?;
        Ok(TraceDecoder {
            src,
            version,
            horizon_days,
            n_drives,
            decoded: 0,
            cols: ColumnStore::default(),
        })
    }

    /// True when the archive uses the legacy v1 (weightless) framing; all
    /// its drives decode with log-weight `0.0`. Test-only introspection.
    #[cfg(test)]
    pub fn is_legacy_weightless(&self) -> bool {
        self.version == Version::V1
    }

    /// Observation-window length from the archive header.
    pub fn horizon_days(&self) -> u32 {
        self.horizon_days
    }

    /// Number of drives the header declares.
    pub fn n_drives(&self) -> u64 {
        self.n_drives
    }

    /// Number of drives decoded so far. Test-only introspection.
    #[cfg(test)]
    pub fn drives_decoded(&self) -> u64 {
        self.decoded
    }

    /// Absolute byte offset of the next unread archive byte. Test-only
    /// introspection.
    #[cfg(test)]
    pub fn byte_offset(&self) -> u64 {
        self.src.offset()
    }

    /// Decodes the next drive into `log`, reusing its buffers. Returns
    /// `Ok(false)` once all declared drives have been decoded (leaving
    /// `log` untouched).
    pub fn next_drive_into(&mut self, log: &mut DriveLog) -> Result<bool, DecodeError> {
        if self.decoded >= self.n_drives {
            return Ok(false);
        }
        decode_drive_into(&mut self.src, self.version, log)?;
        self.decoded += 1;
        Ok(true)
    }

    /// Decodes up to `max_drives` drives into `out`, reusing both the
    /// vector and each element's buffers. `out` is truncated to the number
    /// of drives actually decoded; returns that count (`0` at end of
    /// archive).
    pub fn read_chunk_into(
        &mut self,
        max_drives: usize,
        out: &mut Vec<DriveLog>,
    ) -> Result<usize, DecodeError> {
        let mut n = 0usize;
        while n < max_drives && self.decoded < self.n_drives {
            if n == out.len() {
                out.push(DriveLog::new(DriveId(0), DriveModel::from_index(0)));
            }
            decode_drive_into(&mut self.src, self.version, &mut out[n])?;
            self.decoded += 1;
            n += 1;
        }
        out.truncate(n);
        Ok(n)
    }

    /// Decodes the next drive into internal columnar buffers and lends a
    /// borrowed view. Returns `Ok(None)` once all declared drives have
    /// been decoded. The view is invalidated by the next decoder call.
    pub fn next_drive_columns(&mut self) -> Result<Option<DriveColumns<'_>>, DecodeError> {
        if self.decoded >= self.n_drives {
            return Ok(None);
        }
        let (id, model) = decode_drive_columns_into(&mut self.src, self.version, &mut self.cols)?;
        self.decoded += 1;
        Ok(Some(DriveColumns {
            id,
            model,
            columns: self.cols.view(),
            swaps: &self.cols.swaps,
            log_weight: self.cols.log_weight,
        }))
    }

    /// Folds `f` over every remaining drive with one reused scratch
    /// [`DriveLog`] — the constant-memory way to run a per-drive analysis
    /// over an arbitrarily large archive.
    pub fn for_each_drive(
        &mut self,
        mut f: impl FnMut(&DriveLog),
    ) -> Result<(), DecodeError> {
        let mut scratch = DriveLog::new(DriveId(0), DriveModel::from_index(0));
        while self.next_drive_into(&mut scratch)? {
            f(&scratch);
        }
        Ok(())
    }
}

impl<R: Read> Iterator for TraceDecoder<R> {
    type Item = Result<DriveLog, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        let mut log = DriveLog::new(DriveId(0), DriveModel::from_index(0));
        match self.next_drive_into(&mut log) {
            Ok(true) => Some(Ok(log)),
            Ok(false) => None,
            Err(e) => Some(Err(e)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = usize::try_from(self.n_drives - self.decoded).unwrap_or(usize::MAX);
        (0, Some(remaining))
    }
}

/// Incremental archive writer over any [`Write`] sink: emits the trace
/// header up front, then appends drive records one at a time. Each drive
/// is serialized into an internal scratch buffer (reused between drives)
/// and flushed to the sink immediately, so peak memory is one drive
/// record regardless of archive size — the simulator's `FleetGen` builder
/// streams paper-scale archives straight to disk through this type.
///
/// The drive count is part of the header, so it must be declared at
/// construction; [`finish_sink`](TraceEncoder::finish_sink) fails (and the
/// `Vec<u8>` specialization's [`finish`](TraceEncoder::finish) panics) if
/// the number of appended drives disagrees, which turns a
/// silently-corrupt archive into a loud failure. Drives may arrive from
/// any source — owned logs ([`append_drive`]), columnar views
/// ([`append_columns`]), or pre-encoded chunks from parallel workers
/// ([`append_encoded`]) — as long as they are appended in ascending id
/// order (the decoder does not sort).
///
/// `TraceEncoder<Vec<u8>>` (the default sink) additionally offers the
/// legacy infallible API: [`new`](TraceEncoder::new),
/// [`with_capacity`](TraceEncoder::with_capacity) and
/// [`finish`](TraceEncoder::finish).
///
/// [`append_drive`]: TraceEncoder::append_drive
/// [`append_columns`]: TraceEncoder::append_columns
/// [`append_encoded`]: TraceEncoder::append_encoded
#[derive(Debug)]
pub struct TraceEncoder<W: Write = Vec<u8>> {
    sink: W,
    scratch: Vec<u8>,
    declared: u64,
    appended: u64,
    bytes_written: u64,
}

impl<W: Write> TraceEncoder<W> {
    /// Starts an archive for `n_drives` drives over `horizon_days`,
    /// writing the header to `sink` immediately.
    ///
    /// `W: Write` is implemented for `&mut W` too, so callers that need
    /// their sink back afterwards can pass `&mut sink` and ignore
    /// [`finish_sink`](TraceEncoder::finish_sink)'s return value.
    pub fn to_sink(sink: W, horizon_days: u32, n_drives: u64) -> std::io::Result<Self> {
        let mut enc = TraceEncoder {
            sink,
            scratch: Vec::with_capacity(64),
            declared: n_drives,
            appended: 0,
            bytes_written: 0,
        };
        enc.scratch.extend_from_slice(MAGIC);
        put_varint(&mut enc.scratch, u64::from(horizon_days));
        put_varint(&mut enc.scratch, n_drives);
        enc.flush_scratch()?;
        Ok(enc)
    }

    fn flush_scratch(&mut self) -> std::io::Result<()> {
        self.sink.write_all(&self.scratch)?;
        self.bytes_written += self.scratch.len() as u64;
        self.scratch.clear();
        Ok(())
    }

    /// Appends one drive from an owned log.
    pub fn append_drive(&mut self, d: &DriveLog) -> std::io::Result<()> {
        encode_drive(&mut self.scratch, d);
        self.appended += 1;
        self.flush_scratch()
    }

    /// Appends one drive from a columnar report view with the given
    /// importance-sampling log-weight (`0.0` for uniform sampling).
    pub fn append_columns(
        &mut self,
        id: DriveId,
        model: DriveModel,
        log_weight: f64,
        cols: ReportColumns<'_>,
        swaps: &[SwapEvent],
    ) -> std::io::Result<()> {
        encode_drive_soa(&mut self.scratch, id, model, log_weight, cols, swaps);
        self.appended += 1;
        self.flush_scratch()
    }

    /// Appends `n_drives` drive records already encoded by this module
    /// (e.g. a chunk produced by a parallel worker), written straight
    /// through to the sink.
    pub fn append_encoded(&mut self, n_drives: u64, bytes: &[u8]) -> std::io::Result<()> {
        self.sink.write_all(bytes)?;
        self.bytes_written += bytes.len() as u64;
        self.appended += n_drives;
        Ok(())
    }

    /// Number of drives appended so far. Test-only introspection.
    #[cfg(test)]
    pub fn appended_drives(&self) -> u64 {
        self.appended
    }

    /// Total bytes written to the sink so far (header included).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Finalizes the archive: verifies the appended drive count matches
    /// the declared header count, flushes, and returns the sink.
    ///
    /// A count mismatch yields [`std::io::ErrorKind::InvalidData`] — the
    /// header would not match the body, so the archive on the sink is not
    /// decodable to completion.
    pub fn finish_sink(mut self) -> std::io::Result<W> {
        if self.appended != self.declared {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "TraceEncoder: declared {} drives but appended {}",
                    self.declared, self.appended
                ),
            ));
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl TraceEncoder<Vec<u8>> {
    /// Starts an in-memory archive for `n_drives` drives over
    /// `horizon_days`.
    pub fn new(horizon_days: u32, n_drives: u64) -> Self {
        TraceEncoder::with_capacity(horizon_days, n_drives, 0)
    }

    /// Like [`new`](TraceEncoder::new), pre-reserving `bytes_hint` output
    /// bytes to avoid reallocation on large archives.
    pub fn with_capacity(horizon_days: u32, n_drives: u64, bytes_hint: usize) -> Self {
        let sink = Vec::with_capacity(bytes_hint.max(64));
        // lint:allow(panic-freedom) -- io::Write into a Vec<u8> is infallible
        TraceEncoder::to_sink(sink, horizon_days, n_drives).expect("Vec sink cannot fail")
    }

    /// Finalizes the in-memory archive.
    ///
    /// # Panics
    /// If the number of appended drives differs from the count declared at
    /// construction (the header would not match the body).
    pub fn finish(self) -> Vec<u8> {
        assert_eq!(
            self.appended, self.declared,
            "TraceEncoder: declared {} drives but appended {}",
            self.declared, self.appended
        );
        self.sink
    }
}

/// Encodes a fleet trace into the compact binary format.
pub fn encode_trace(trace: &FleetTrace) -> Vec<u8> {
    // Rough pre-size: ~40 bytes per report avoids repeated reallocation.
    let mut enc = TraceEncoder::with_capacity(
        trace.horizon_days,
        trace.drives.len() as u64,
        64 + trace.total_drive_days() * 40,
    );
    for d in &trace.drives {
        // lint:allow(panic-freedom) -- io::Write into a Vec<u8> is infallible
        enc.append_drive(d).expect("Vec sink cannot fail");
    }
    enc.finish()
}

/// Streams a fleet trace into any [`Write`] sink, returning the number of
/// bytes written. The bytes are identical to [`encode_trace`]'s.
pub fn encode_trace_to<W: Write>(trace: &FleetTrace, sink: W) -> std::io::Result<u64> {
    let mut enc = TraceEncoder::to_sink(sink, trace.horizon_days, trace.drives.len() as u64)?;
    for d in &trace.drives {
        enc.append_drive(d)?;
    }
    let written = enc.bytes_written();
    enc.finish_sink()?;
    Ok(written)
}

/// Decodes a fleet trace previously produced by [`encode_trace`] (or any
/// [`TraceEncoder`]) from a fully-resident buffer. For constant-memory
/// consumption of large archives use [`TraceDecoder`] instead.
pub fn decode_trace(buf: &[u8]) -> Result<FleetTrace, DecodeError> {
    let mut src = SliceSrc::new(buf);
    let version = expect_magic(&mut src)?;
    let horizon_days = get_varint_u32(&mut src)?;
    let n_drives = get_varint(&mut src)? as usize;
    let mut drives = Vec::with_capacity(n_drives.min(1 << 22));
    for _ in 0..n_drives {
        let mut log = DriveLog::new(DriveId(0), DriveModel::from_index(0));
        decode_drive_into(&mut src, version, &mut log)?;
        drives.push(log);
    }
    Ok(FleetTrace {
        horizon_days,
        drives,
    })
}

/// Serializes a trace to a compact JSON string (interchange / inspection).
pub fn trace_to_json(trace: &FleetTrace) -> Result<String, crate::json::JsonError> {
    Ok(crate::json::to_string(trace))
}

/// Deserializes a trace from JSON.
pub fn trace_from_json(s: &str) -> Result<FleetTrace, crate::json::JsonError> {
    crate::json::from_str(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> FleetTrace {
        let mut t = FleetTrace::new(2190);
        for i in 0..3u32 {
            let mut d = DriveLog::new(DriveId(i), DriveModel::from_index(i as usize));
            for day in 0..5u32 {
                let mut r = DailyReport::empty(day * 2);
                r.read_ops = u64::from(day) * 1000 + u64::from(i);
                r.write_ops = u64::from(day) * 500;
                r.erase_ops = u64::from(day) * 3;
                r.pe_cycles = day * 7;
                r.status_read_only = day == 4;
                r.grown_bad_blocks = day;
                r.errors.set(ErrorKind::Correctable, u64::from(day) * 12345);
                r.errors.set(ErrorKind::Uncorrectable, u64::from(day % 2));
                d.reports.push(r);
            }
            if i == 1 {
                d.swaps.push(SwapEvent {
                    swap_day: 11,
                    reentry_day: Some(60),
                });
                d.swaps.push(SwapEvent {
                    swap_day: 90,
                    reentry_day: None,
                });
            }
            // Mixed weights so every roundtrip exercises the v2 column.
            d.log_weight = f64::from(i) * -0.35;
            t.drives.push(d);
        }
        t
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let t = sample_trace();
        let s = trace_to_json(&t).unwrap();
        let back = trace_from_json(&s).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let t = sample_trace();
        let bin = encode_trace(&t).len();
        let json = trace_to_json(&t).unwrap().len();
        assert!(bin * 3 < json, "binary {bin} vs json {json}");
    }

    #[test]
    fn bad_magic_is_rejected_with_got_bytes() {
        let err = decode_trace(b"NOTMAGIC!!").unwrap_err();
        assert_eq!(
            err,
            DecodeError::BadMagic {
                got: b"NOTMAGIC".to_vec()
            }
        );
        assert_eq!(err.offset(), None);
        // A buffer shorter than the magic is also BadMagic, not EOF.
        let err = decode_trace(b"SSD").unwrap_err();
        assert_eq!(err, DecodeError::BadMagic { got: b"SSD".to_vec() });
    }

    #[test]
    fn truncated_buffer_is_rejected_with_offset() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let cut = &bytes[..bytes.len() - 5];
        let err = decode_trace(cut).unwrap_err();
        match err {
            DecodeError::UnexpectedEof { offset } => {
                assert_eq!(offset, cut.len() as u64, "EOF offset points at the break");
            }
            other => panic!("expected UnexpectedEof, got {other:?}"),
        }
    }

    #[test]
    fn varint_roundtrip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut b = SliceSrc::new(&buf);
            assert_eq!(get_varint(&mut b).unwrap(), v);
        }
    }

    #[test]
    fn varint_overflow_is_detected() {
        let mut b = SliceSrc::new(&[0xff; 11]);
        // Overflow is detected at the 10th byte (shift 63, byte > 1).
        assert_eq!(get_varint(&mut b), Err(DecodeError::VarintOverflow { offset: 9 }));
    }

    #[test]
    fn decode_error_display_includes_context() {
        let e = DecodeError::BadDiscriminant {
            offset: 42,
            expected: "drive model",
            got: 7,
        };
        let s = e.to_string();
        assert!(s.contains("drive model") && s.contains('7') && s.contains("42"), "{s}");
        assert_eq!(e.offset(), Some(42));
        let s = DecodeError::BadMagic { got: b"oops".to_vec() }.to_string();
        assert!(s.contains("expected"), "{s}");
    }

    /// Columns borrowed from a drive's reports, for SoA-vs-AoS comparison.
    struct Cols {
        age_days: Vec<u32>,
        read_ops: Vec<u64>,
        write_ops: Vec<u64>,
        erase_ops: Vec<u64>,
        pe_cycles: Vec<u32>,
        status_flags: Vec<u8>,
        factory_bad_blocks: Vec<u32>,
        grown_bad_blocks: Vec<u32>,
        errors: [Vec<u64>; ErrorKind::COUNT],
    }

    impl Cols {
        fn from_reports(reports: &[DailyReport]) -> Self {
            let mut c = Cols {
                age_days: Vec::new(),
                read_ops: Vec::new(),
                write_ops: Vec::new(),
                erase_ops: Vec::new(),
                pe_cycles: Vec::new(),
                status_flags: Vec::new(),
                factory_bad_blocks: Vec::new(),
                grown_bad_blocks: Vec::new(),
                errors: std::array::from_fn(|_| Vec::new()),
            };
            for r in reports {
                c.age_days.push(r.age_days);
                c.read_ops.push(r.read_ops);
                c.write_ops.push(r.write_ops);
                c.erase_ops.push(r.erase_ops);
                c.pe_cycles.push(r.pe_cycles);
                c.status_flags.push(
                    u8::from(r.status_dead) * STATUS_DEAD
                        | u8::from(r.status_read_only) * STATUS_READ_ONLY,
                );
                c.factory_bad_blocks.push(r.factory_bad_blocks);
                c.grown_bad_blocks.push(r.grown_bad_blocks);
                for (i, (_, count)) in r.errors.iter().enumerate() {
                    c.errors[i].push(count);
                }
            }
            c
        }

        fn view(&self) -> ReportColumns<'_> {
            ReportColumns {
                age_days: &self.age_days,
                read_ops: &self.read_ops,
                write_ops: &self.write_ops,
                erase_ops: &self.erase_ops,
                pe_cycles: &self.pe_cycles,
                status_flags: &self.status_flags,
                factory_bad_blocks: &self.factory_bad_blocks,
                grown_bad_blocks: &self.grown_bad_blocks,
                errors: std::array::from_fn(|i| self.errors[i].as_slice()),
            }
        }
    }

    #[test]
    fn soa_encoding_matches_aos_per_drive() {
        for d in &sample_trace().drives {
            let mut aos = Vec::new();
            encode_drive(&mut aos, d);
            let cols = Cols::from_reports(&d.reports);
            let mut soa = Vec::new();
            encode_drive_soa(&mut soa, d.id, d.model, d.log_weight, cols.view(), &d.swaps);
            assert_eq!(aos, soa, "drive {:?}", d.id);
        }
    }

    #[test]
    fn trace_encoder_assembles_identical_archive() {
        let t = sample_trace();
        let expected = encode_trace(&t);

        // Mixed append paths: owned log, columnar view, pre-encoded bytes.
        let mut enc = TraceEncoder::new(t.horizon_days, t.drives.len() as u64);
        enc.append_drive(&t.drives[0]).unwrap();
        let cols = Cols::from_reports(&t.drives[1].reports);
        enc.append_columns(
            t.drives[1].id,
            t.drives[1].model,
            t.drives[1].log_weight,
            cols.view(),
            &t.drives[1].swaps,
        )
        .unwrap();
        let mut chunk = Vec::new();
        encode_drive(&mut chunk, &t.drives[2]);
        enc.append_encoded(1, &chunk).unwrap();
        assert_eq!(enc.finish(), expected);
    }

    #[test]
    #[should_panic(expected = "declared 3 drives but appended 1")]
    fn trace_encoder_panics_on_count_mismatch() {
        let t = sample_trace();
        let mut enc = TraceEncoder::new(t.horizon_days, 3);
        enc.append_drive(&t.drives[0]).unwrap();
        let _ = enc.finish();
    }

    #[test]
    fn generic_encoder_rejects_count_mismatch_as_io_error() {
        let t = sample_trace();
        let mut enc = TraceEncoder::to_sink(std::io::sink(), t.horizon_days, 3).unwrap();
        enc.append_drive(&t.drives[0]).unwrap();
        let err = enc.finish_sink().unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn status_flag_masks_match_decoder() {
        let mut r = DailyReport::empty(3);
        r.status_dead = true;
        let mut buf = Vec::new();
        encode_report(&mut buf, &r);
        let back = decode_report(&mut SliceSrc::new(&buf)).unwrap();
        assert!(back.status_dead && !back.status_read_only);

        r.status_dead = false;
        r.status_read_only = true;
        buf.clear();
        encode_report(&mut buf, &r);
        let back = decode_report(&mut SliceSrc::new(&buf)).unwrap();
        assert!(!back.status_dead && back.status_read_only);
    }

    // ---- streaming paths ----

    /// A reader that hands out at most `max` bytes per read call,
    /// exercising refill boundaries in the streaming decoder.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        max: usize,
    }

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = (self.data.len() - self.pos).min(self.max).min(buf.len());
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn stream_decoder_matches_resident_decode() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        for max in [1usize, 3, 64, bytes.len()] {
            let reader = Trickle { data: &bytes, pos: 0, max };
            let mut dec = TraceDecoder::with_buffer_capacity(reader, 32).unwrap();
            assert_eq!(dec.horizon_days(), t.horizon_days);
            assert_eq!(dec.n_drives(), t.drives.len() as u64);
            let drives: Vec<DriveLog> =
                (&mut dec).map(|d| d.expect("stream decode")).collect();
            assert_eq!(drives, t.drives, "per-read budget {max}");
            assert_eq!(dec.drives_decoded(), t.drives.len() as u64);
            assert_eq!(dec.byte_offset(), bytes.len() as u64);
        }
    }

    #[test]
    fn stream_decoder_reuses_buffers_in_fold() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let mut dec = TraceDecoder::new(&bytes[..]).unwrap();
        let mut seen = Vec::new();
        dec.for_each_drive(|d| seen.push(d.clone())).unwrap();
        assert_eq!(seen, t.drives);
    }

    #[test]
    fn stream_decoder_chunks_cover_all_drives() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        for chunk in [1usize, 2, 3, 100] {
            let mut dec = TraceDecoder::new(&bytes[..]).unwrap();
            let mut out = Vec::new();
            let mut all = Vec::new();
            loop {
                let n = dec.read_chunk_into(chunk, &mut out).unwrap();
                if n == 0 {
                    break;
                }
                assert!(n <= chunk);
                assert_eq!(out.len(), n);
                all.extend(out.iter().cloned());
            }
            assert_eq!(all, t.drives, "chunk size {chunk}");
        }
    }

    #[test]
    fn stream_decoder_columns_match_owned_drives() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let mut dec = TraceDecoder::new(&bytes[..]).unwrap();
        for expected in &t.drives {
            let view = dec.next_drive_columns().unwrap().expect("one view per drive");
            assert_eq!(view.id, expected.id);
            assert_eq!(view.model, expected.model);
            assert_eq!(view.swaps, expected.swaps.as_slice());
            assert_eq!(view.columns.len(), expected.reports.len());
            assert_eq!(view.log_weight.to_bits(), expected.log_weight.to_bits());
            // Re-encoding the borrowed view reproduces the drive's bytes.
            let mut via_cols = Vec::new();
            encode_drive_soa(
                &mut via_cols,
                view.id,
                view.model,
                view.log_weight,
                view.columns,
                view.swaps,
            );
            let mut via_log = Vec::new();
            encode_drive(&mut via_log, expected);
            assert_eq!(via_cols, via_log);
        }
        assert!(dec.next_drive_columns().unwrap().is_none());
    }

    #[test]
    fn stream_decoder_reports_truncation_offset() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let cut = &bytes[..bytes.len() - 5];
        let mut dec = TraceDecoder::new(cut).unwrap();
        let err = dec.find_map(|r| r.err()).expect("truncation must error");
        assert_eq!(err, DecodeError::UnexpectedEof { offset: cut.len() as u64 });
    }

    #[test]
    fn stream_decoder_rejects_bad_magic_and_short_input() {
        let err = TraceDecoder::new(&b"NOTMAGIC!!"[..]).unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic { .. }));
        let err = TraceDecoder::new(&b"SS"[..]).unwrap_err();
        assert_eq!(err, DecodeError::BadMagic { got: b"SS".to_vec() });
    }

    #[test]
    fn stream_decoder_surfaces_io_errors_with_offset() {
        struct FailAfter {
            data: Vec<u8>,
            pos: usize,
        }
        impl Read for FailAfter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.pos >= self.data.len() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::BrokenPipe,
                        "synthetic failure",
                    ));
                }
                let n = (self.data.len() - self.pos).min(buf.len()).min(7);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let half = bytes.len() / 2;
        let reader = FailAfter { data: bytes[..half].to_vec(), pos: 0 };
        let mut dec = TraceDecoder::with_buffer_capacity(reader, 16).unwrap();
        let err = dec.find_map(|r| r.err()).expect("io failure must surface");
        match err {
            DecodeError::Io { offset, kind, .. } => {
                assert_eq!(kind, std::io::ErrorKind::BrokenPipe);
                assert_eq!(offset, half as u64);
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn stream_encoder_is_byte_identical_to_resident() {
        let t = sample_trace();
        let expected = encode_trace(&t);
        let mut out = Vec::new();
        let written = encode_trace_to(&t, &mut out).unwrap();
        assert_eq!(out, expected);
        assert_eq!(written, expected.len() as u64);
    }

    #[test]
    fn encoder_tracks_bytes_and_drives() {
        let t = sample_trace();
        let mut enc =
            TraceEncoder::to_sink(std::io::sink(), t.horizon_days, t.drives.len() as u64)
                .unwrap();
        for d in &t.drives {
            enc.append_drive(d).unwrap();
        }
        assert_eq!(enc.appended_drives(), t.drives.len() as u64);
        assert_eq!(enc.bytes_written(), encode_trace(&t).len() as u64);
        enc.finish_sink().unwrap();
    }

    /// Encodes `t` in the legacy v1 framing (no per-drive weight field).
    fn encode_trace_v1(t: &FleetTrace) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V1);
        put_varint(&mut buf, u64::from(t.horizon_days));
        put_varint(&mut buf, t.drives.len() as u64);
        for d in &t.drives {
            put_varint(&mut buf, u64::from(d.id.0));
            buf.push(d.model.index() as u8);
            put_varint(&mut buf, d.reports.len() as u64);
            for r in &d.reports {
                encode_report(&mut buf, r);
            }
            encode_swaps(&mut buf, &d.swaps);
        }
        buf
    }

    #[test]
    fn legacy_v1_archives_decode_with_zero_weights() {
        let t = sample_trace();
        let v1 = encode_trace_v1(&t);
        // Resident path.
        let back = decode_trace(&v1).unwrap();
        assert!(back.drives.iter().all(|d| d.log_weight.to_bits() == 0));
        let mut expected = t.clone();
        for d in &mut expected.drives {
            d.log_weight = 0.0;
        }
        assert_eq!(back, expected);
        // Streaming path, both record shapes.
        let mut dec = TraceDecoder::new(&v1[..]).unwrap();
        assert!(dec.is_legacy_weightless());
        let drives: Vec<DriveLog> = (&mut dec).map(|d| d.unwrap()).collect();
        assert_eq!(drives, expected.drives);
        let mut dec = TraceDecoder::new(&v1[..]).unwrap();
        while let Some(view) = dec.next_drive_columns().unwrap() {
            assert_eq!(view.log_weight.to_bits(), 0);
        }
        // Current-format archives are not flagged legacy.
        let v2 = encode_trace(&t);
        assert!(!TraceDecoder::new(&v2[..]).unwrap().is_legacy_weightless());
    }

    #[test]
    fn mutated_weighted_and_legacy_archives_never_panic() {
        // Decode fuzz over BOTH framings: truncations at every prefix
        // length and deterministic byte flips must yield Ok or a typed
        // DecodeError — never a panic — whether the bytes started as a
        // weighted v2 archive or a legacy weightless v1 one.
        let t = sample_trace();
        let mut s = 0x243f6a8885a308d3u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for archive in [encode_trace(&t), encode_trace_v1(&t)] {
            for cut in 0..archive.len() {
                let _ = decode_trace(&archive[..cut]);
            }
            for _ in 0..256 {
                let mut bytes = archive.clone();
                for _ in 0..(next() % 4 + 1) {
                    let at = (next() % bytes.len() as u64) as usize;
                    bytes[at] ^= (next() as u8) | 1;
                }
                if let Ok(back) = decode_trace(&bytes) {
                    // Whatever decoded must also survive a re-encode.
                    let _ = encode_trace(&back);
                }
            }
        }
    }

    #[test]
    fn weight_column_roundtrips_arbitrary_bit_patterns() {
        // Deterministic xorshift so the fuzz corpus is stable.
        let mut s = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut t = FleetTrace::new(100);
        for i in 0..64u32 {
            let mut d = DriveLog::new(DriveId(i), DriveModel::from_index((i % 3) as usize));
            d.reports.push(DailyReport::empty(i));
            // Arbitrary bit patterns: subnormals, negatives, huge values —
            // the codec must preserve bits exactly (NaNs excluded only
            // because PartialEq can't compare them; bits are asserted).
            d.log_weight = f64::from_bits(next());
            if d.log_weight.is_nan() {
                d.log_weight = -f64::from_bits(next() >> 12);
            }
            t.drives.push(d);
        }
        let bytes = encode_trace(&t);
        let back = decode_trace(&bytes).unwrap();
        for (a, b) in back.drives.iter().zip(&t.drives) {
            assert_eq!(a.log_weight.to_bits(), b.log_weight.to_bits());
        }
    }

    #[test]
    fn trailing_bytes_after_declared_drives_are_ignored() {
        let t = sample_trace();
        let mut bytes = encode_trace(&t);
        bytes.extend_from_slice(b"trailing junk");
        assert_eq!(decode_trace(&bytes).unwrap(), t);
        let mut dec = TraceDecoder::new(&bytes[..]).unwrap();
        let n = (&mut dec).filter(|r| r.is_ok()).count();
        assert_eq!(n, t.drives.len());
    }
}
