//! Dense per-day error counters.

use crate::error_kind::ErrorKind;
use std::ops::{Add, AddAssign, Index, IndexMut};

/// Per-day counts for each of the ten error types, stored densely and
/// indexed by [`ErrorKind`].
///
/// Counts are `u64`: correctable-error counts in particular can be very
/// large (they count corrected *bits*), and cumulative sums over a six-year
/// lifetime overflow `u32` easily.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorCounts(pub [u64; ErrorKind::COUNT]);

// Serialized transparently, as the bare array of ten counts.
impl crate::json::ToJson for ErrorCounts {
    fn to_json(&self) -> crate::json::Value {
        crate::json::ToJson::to_json(&self.0)
    }
}

impl crate::json::FromJson for ErrorCounts {
    fn from_json(v: &crate::json::Value) -> Result<Self, crate::json::JsonError> {
        <[u64; ErrorKind::COUNT]>::from_json(v).map(ErrorCounts)
    }
}

impl ErrorCounts {
    /// All-zero counters.
    #[inline]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Returns the count for one error kind.
    #[inline]
    pub fn get(&self, kind: ErrorKind) -> u64 {
        self.0[kind.index()]
    }

    /// Sets the count for one error kind.
    #[inline]
    pub fn set(&mut self, kind: ErrorKind, value: u64) {
        self.0[kind.index()] = value;
    }

    /// Adds `value` to the count for one error kind.
    #[inline]
    pub fn add_count(&mut self, kind: ErrorKind, value: u64) {
        self.0[kind.index()] += value;
    }

    /// True if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&c| c == 0)
    }

    /// Total count across all error kinds.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// Total count across non-transparent error kinds only.
    pub fn total_non_transparent(&self) -> u64 {
        ErrorKind::non_transparent().map(|k| self.get(k)).sum()
    }

    /// True if any non-transparent error occurred.
    pub fn any_non_transparent(&self) -> bool {
        ErrorKind::non_transparent().any(|k| self.get(k) > 0)
    }

    /// Iterate over `(kind, count)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (ErrorKind, u64)> + '_ {
        ErrorKind::ALL.into_iter().map(move |k| (k, self.get(k)))
    }

    /// Element-wise saturating sum of two counters.
    pub fn saturating_add(&self, other: &Self) -> Self {
        let mut out = [0u64; ErrorKind::COUNT];
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.0[i].saturating_add(other.0[i]);
        }
        ErrorCounts(out)
    }
}

impl Index<ErrorKind> for ErrorCounts {
    type Output = u64;
    #[inline]
    fn index(&self, kind: ErrorKind) -> &u64 {
        &self.0[kind.index()]
    }
}

impl IndexMut<ErrorKind> for ErrorCounts {
    #[inline]
    fn index_mut(&mut self, kind: ErrorKind) -> &mut u64 {
        &mut self.0[kind.index()]
    }
}

impl Add for ErrorCounts {
    type Output = ErrorCounts;
    fn add(self, rhs: Self) -> Self {
        let mut out = self;
        out += rhs;
        out
    }
}

impl AddAssign for ErrorCounts {
    fn add_assign(&mut self, rhs: Self) {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a += b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_add_roundtrip() {
        let mut c = ErrorCounts::zero();
        assert!(c.is_zero());
        c.set(ErrorKind::Uncorrectable, 5);
        c.add_count(ErrorKind::Uncorrectable, 2);
        assert_eq!(c.get(ErrorKind::Uncorrectable), 7);
        assert_eq!(c[ErrorKind::Uncorrectable], 7);
        assert!(!c.is_zero());
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn non_transparent_totals() {
        let mut c = ErrorCounts::zero();
        c.set(ErrorKind::Correctable, 100); // transparent
        c.set(ErrorKind::FinalRead, 3); // non-transparent
        c.set(ErrorKind::Timeout, 1); // non-transparent
        assert_eq!(c.total(), 104);
        assert_eq!(c.total_non_transparent(), 4);
        assert!(c.any_non_transparent());

        let mut t = ErrorCounts::zero();
        t.set(ErrorKind::Write, 9);
        assert!(!t.any_non_transparent());
    }

    #[test]
    fn addition_is_elementwise() {
        let mut a = ErrorCounts::zero();
        a.set(ErrorKind::Read, 1);
        let mut b = ErrorCounts::zero();
        b.set(ErrorKind::Read, 2);
        b.set(ErrorKind::Erase, 5);
        let c = a + b;
        assert_eq!(c.get(ErrorKind::Read), 3);
        assert_eq!(c.get(ErrorKind::Erase), 5);
        a += b;
        assert_eq!(a, c);
    }

    #[test]
    fn saturating_add_does_not_wrap() {
        let mut a = ErrorCounts::zero();
        a.set(ErrorKind::Meta, u64::MAX - 1);
        let mut b = ErrorCounts::zero();
        b.set(ErrorKind::Meta, 10);
        assert_eq!(a.saturating_add(&b).get(ErrorKind::Meta), u64::MAX);
    }

    #[test]
    fn iter_yields_all_kinds_in_order() {
        let c = ErrorCounts::zero();
        let kinds: Vec<_> = c.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds.as_slice(), &ErrorKind::ALL);
    }
}
