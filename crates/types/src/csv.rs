//! CSV interchange for fleet traces.
//!
//! The research community around drive-reliability data works in
//! CSV-first tooling (pandas, R). This module writes and reads a
//! two-file flat format with a stable header so traces can cross the
//! Rust/Python boundary without custom glue:
//!
//! * **reports CSV** — one row per drive-day;
//! * **swaps CSV** — one row per swap event.
//!
//! The format is deliberately hand-rolled (no `csv` crate): every field
//! is numeric or a known enum name, so quoting/escaping is unnecessary,
//! and the parser can be strict.

use crate::{
    DailyReport, DriveId, DriveLog, DriveModel, ErrorCounts, ErrorKind, FleetTrace, SwapEvent,
};
use std::collections::BTreeMap;
use std::io::{self, BufRead, Write};

/// Header of the reports CSV, in column order.
pub fn reports_header() -> String {
    let mut cols = vec![
        "drive_id".to_string(),
        "model".to_string(),
        "age_days".to_string(),
        "read_ops".to_string(),
        "write_ops".to_string(),
        "erase_ops".to_string(),
        "pe_cycles".to_string(),
        "status_dead".to_string(),
        "status_read_only".to_string(),
        "factory_bad_blocks".to_string(),
        "grown_bad_blocks".to_string(),
    ];
    for k in ErrorKind::ALL {
        cols.push(format!("err_{}", k.short_name()));
    }
    cols.join(",")
}

/// Header of the swaps CSV.
pub fn swaps_header() -> &'static str {
    "drive_id,model,swap_day,reentry_day"
}

/// Writes the reports CSV for a trace.
pub fn write_reports_csv<W: Write>(trace: &FleetTrace, mut w: W) -> io::Result<()> {
    writeln!(w, "{}", reports_header())?;
    let mut line = String::with_capacity(256);
    for d in &trace.drives {
        for r in &d.reports {
            line.clear();
            use std::fmt::Write as _;
            let _ = write!(
                line,
                "{},{},{},{},{},{},{},{},{},{},{}",
                d.id.0,
                d.model.name(),
                r.age_days,
                r.read_ops,
                r.write_ops,
                r.erase_ops,
                r.pe_cycles,
                u8::from(r.status_dead),
                u8::from(r.status_read_only),
                r.factory_bad_blocks,
                r.grown_bad_blocks,
            );
            for (_, c) in r.errors.iter() {
                let _ = write!(line, ",{c}");
            }
            writeln!(w, "{line}")?;
        }
    }
    Ok(())
}

/// Writes the swaps CSV for a trace.
pub fn write_swaps_csv<W: Write>(trace: &FleetTrace, mut w: W) -> io::Result<()> {
    writeln!(w, "{}", swaps_header())?;
    for d in &trace.drives {
        for s in &d.swaps {
            match s.reentry_day {
                Some(re) => writeln!(w, "{},{},{},{}", d.id.0, d.model.name(), s.swap_day, re)?,
                None => writeln!(w, "{},{},{},", d.id.0, d.model.name(), s.swap_day)?,
            }
        }
    }
    Ok(())
}

/// Errors raised by the CSV reader.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural/parse problem.
    Parse {
        /// 1-based line number of the offending row.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "io error: {e}"),
            CsvError::Parse { line, message } => write!(f, "line {line}: {message}"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> Self {
        CsvError::Io(e)
    }
}

fn parse_err(line: usize, message: impl Into<String>) -> CsvError {
    CsvError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_model(s: &str, line: usize) -> Result<DriveModel, CsvError> {
    DriveModel::ALL
        .into_iter()
        .find(|m| m.name() == s)
        .ok_or_else(|| parse_err(line, format!("unknown model '{s}'")))
}

fn field<T: std::str::FromStr>(s: &str, line: usize, name: &str) -> Result<T, CsvError> {
    s.parse()
        .map_err(|_| parse_err(line, format!("bad {name}: '{s}'")))
}

/// Reads a trace from reports + swaps CSV streams.
///
/// `horizon_days` is metadata the CSVs do not carry; pass the observation
/// window length. Drives are assembled in drive-id order; rows for each
/// drive must be age-sorted (as written by [`write_reports_csv`]).
///
/// Limitation: a drive that never produced a report or swap has no rows in
/// either file and therefore cannot be recovered — round-tripping a trace
/// containing such drives drops them (the binary and JSON codecs preserve
/// them; prefer those for archival).
pub fn read_trace_csv<R1: BufRead, R2: BufRead>(
    reports: R1,
    swaps: R2,
    horizon_days: u32,
) -> Result<FleetTrace, CsvError> {
    let mut drives: BTreeMap<u32, DriveLog> = BTreeMap::new();

    let mut lines = reports.lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty reports csv"))??;
    if header != reports_header() {
        return Err(parse_err(1, "reports header mismatch"));
    }
    for (idx, line) in lines.enumerate() {
        let lineno = idx + 2;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 11 + ErrorKind::COUNT {
            return Err(parse_err(lineno, "wrong column count"));
        }
        let id: u32 = field(parts[0], lineno, "drive_id")?;
        let model = parse_model(parts[1], lineno)?;
        let mut errors = ErrorCounts::zero();
        for (i, kind) in ErrorKind::ALL.into_iter().enumerate() {
            errors.set(kind, field(parts[11 + i], lineno, "error count")?);
        }
        let report = DailyReport {
            age_days: field(parts[2], lineno, "age_days")?,
            read_ops: field(parts[3], lineno, "read_ops")?,
            write_ops: field(parts[4], lineno, "write_ops")?,
            erase_ops: field(parts[5], lineno, "erase_ops")?,
            pe_cycles: field(parts[6], lineno, "pe_cycles")?,
            status_dead: parts[7] == "1",
            status_read_only: parts[8] == "1",
            factory_bad_blocks: field(parts[9], lineno, "factory_bad_blocks")?,
            grown_bad_blocks: field(parts[10], lineno, "grown_bad_blocks")?,
            errors,
        };
        drives
            .entry(id)
            .or_insert_with(|| DriveLog::new(DriveId(id), model))
            .reports
            .push(report);
    }

    let mut lines = swaps.lines();
    let header = lines
        .next()
        .ok_or_else(|| parse_err(1, "empty swaps csv"))??;
    if header != swaps_header() {
        return Err(parse_err(1, "swaps header mismatch"));
    }
    for (idx, line) in lines.enumerate() {
        let lineno = idx + 2;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 4 {
            return Err(parse_err(lineno, "wrong column count"));
        }
        let id: u32 = field(parts[0], lineno, "drive_id")?;
        let model = parse_model(parts[1], lineno)?;
        let swap = SwapEvent {
            swap_day: field(parts[2], lineno, "swap_day")?,
            reentry_day: if parts[3].is_empty() {
                None
            } else {
                Some(field(parts[3], lineno, "reentry_day")?)
            },
        };
        drives
            .entry(id)
            .or_insert_with(|| DriveLog::new(DriveId(id), model))
            .swaps
            .push(swap);
    }

    let trace = FleetTrace {
        horizon_days,
        drives: drives.into_values().collect(),
    };
    trace
        .validate()
        .map_err(|m| parse_err(0, format!("invariant violation after load: {m}")))?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn sample_trace() -> FleetTrace {
        let mut t = FleetTrace::new(400);
        for i in 0..2u32 {
            let mut d = DriveLog::new(DriveId(i), DriveModel::from_index(i as usize));
            for day in 0..4u32 {
                let mut r = DailyReport::empty(day * 5);
                r.read_ops = 100 + u64::from(day);
                r.write_ops = 50;
                r.pe_cycles = day;
                r.errors.set(ErrorKind::Uncorrectable, u64::from(day % 2));
                r.errors.set(ErrorKind::Correctable, 12345);
                d.reports.push(r);
            }
            if i == 1 {
                d.swaps.push(SwapEvent {
                    swap_day: 25,
                    reentry_day: Some(300),
                });
                d.swaps.push(SwapEvent {
                    swap_day: 350,
                    reentry_day: None,
                });
            }
            t.drives.push(d);
        }
        t
    }

    fn roundtrip(t: &FleetTrace) -> FleetTrace {
        let mut reports = Vec::new();
        let mut swaps = Vec::new();
        write_reports_csv(t, &mut reports).unwrap();
        write_swaps_csv(t, &mut swaps).unwrap();
        read_trace_csv(
            BufReader::new(reports.as_slice()),
            BufReader::new(swaps.as_slice()),
            t.horizon_days,
        )
        .unwrap()
    }

    #[test]
    fn csv_roundtrip_is_lossless() {
        let t = sample_trace();
        assert_eq!(roundtrip(&t), t);
    }

    #[test]
    fn header_shapes() {
        assert!(reports_header().starts_with("drive_id,model,age_days"));
        assert_eq!(
            reports_header().split(',').count(),
            11 + ErrorKind::COUNT
        );
    }

    #[test]
    fn missing_reentry_is_empty_field() {
        let t = sample_trace();
        let mut swaps = Vec::new();
        write_swaps_csv(&t, &mut swaps).unwrap();
        let text = String::from_utf8(swaps).unwrap();
        assert!(text.contains("1,MLC-B,350,\n"), "{text}");
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let t = sample_trace();
        let mut swaps = Vec::new();
        write_swaps_csv(&t, &mut swaps).unwrap();
        let bad_reports = b"not,a,real,header\n".to_vec();
        let err = read_trace_csv(
            BufReader::new(bad_reports.as_slice()),
            BufReader::new(swaps.as_slice()),
            400,
        )
        .unwrap_err();
        assert!(err.to_string().contains("header mismatch"));
    }

    #[test]
    fn bad_numeric_field_reports_line() {
        let t = sample_trace();
        let mut reports = Vec::new();
        let mut swaps = Vec::new();
        write_reports_csv(&t, &mut reports).unwrap();
        write_swaps_csv(&t, &mut swaps).unwrap();
        let mut text = String::from_utf8(reports).unwrap();
        text = text.replace("drive_id,", "drive_id,").replacen("0,MLC-A,0,", "0,MLC-A,zero,", 1);
        let err = read_trace_csv(
            BufReader::new(text.as_bytes()),
            BufReader::new(swaps.as_slice()),
            400,
        )
        .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2") && msg.contains("age_days"), "{msg}");
    }

    #[test]
    fn unknown_model_is_rejected() {
        let reports = format!("{}\n7,MLC-Z,0,1,1,1,0,0,0,0,0,0,0,0,0,0,0,0,0,0,0\n", reports_header());
        let swaps = format!("{}\n", swaps_header());
        let err = read_trace_csv(
            BufReader::new(reports.as_bytes()),
            BufReader::new(swaps.as_bytes()),
            100,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown model"));
    }
}
