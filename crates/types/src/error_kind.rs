//! The ten-error taxonomy of the trace (Section 2 of the paper).

/// The ten error types reported in the daily log, in the paper's order.
///
/// Section 2 splits these into two classes:
///
/// * **transparent** errors may be hidden from the user (the drive recovers
///   internally): correctable, read, write, and erase errors;
/// * **non-transparent** errors are user-visible lapses of drive function:
///   final read, final write, meta, response, timeout, and uncorrectable
///   errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ErrorKind {
    /// Bits found corrupted and corrected by drive-internal ECC during reads.
    Correctable,
    /// Erase operations that failed.
    Erase,
    /// Read operations that failed even after drive-initiated retries.
    FinalRead,
    /// Write operations that failed even after drive-initiated retries.
    FinalWrite,
    /// Errors encountered while reading drive-internal metadata.
    Meta,
    /// Read operations that errored but succeeded on retry.
    Read,
    /// Bad responses from the drive.
    Response,
    /// Operations that timed out after some wait period.
    Timeout,
    /// Uncorrectable ECC errors encountered during read operations.
    Uncorrectable,
    /// Write operations that errored but succeeded on retry.
    Write,
}

/// Transparency class of an error type (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// May be hidden from the user.
    Transparent,
    /// May not be hidden from the user.
    NonTransparent,
}

crate::impl_json_enum!(ErrorKind {
    Correctable,
    Erase,
    FinalRead,
    FinalWrite,
    Meta,
    Read,
    Response,
    Timeout,
    Uncorrectable,
    Write,
});

crate::impl_json_enum!(ErrorClass { Transparent, NonTransparent });

impl ErrorKind {
    /// Number of distinct error kinds.
    pub const COUNT: usize = 10;

    /// All error kinds in canonical order (stable indices for dense arrays).
    pub const ALL: [ErrorKind; Self::COUNT] = [
        ErrorKind::Correctable,
        ErrorKind::Erase,
        ErrorKind::FinalRead,
        ErrorKind::FinalWrite,
        ErrorKind::Meta,
        ErrorKind::Read,
        ErrorKind::Response,
        ErrorKind::Timeout,
        ErrorKind::Uncorrectable,
        ErrorKind::Write,
    ];

    /// Dense index of this kind within [`ErrorKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ErrorKind::Correctable => 0,
            ErrorKind::Erase => 1,
            ErrorKind::FinalRead => 2,
            ErrorKind::FinalWrite => 3,
            ErrorKind::Meta => 4,
            ErrorKind::Read => 5,
            ErrorKind::Response => 6,
            ErrorKind::Timeout => 7,
            ErrorKind::Uncorrectable => 8,
            ErrorKind::Write => 9,
        }
    }

    /// Inverse of [`ErrorKind::index`]. Panics on out-of-range input.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }

    /// Transparency class per Section 2 of the paper.
    pub fn class(self) -> ErrorClass {
        match self {
            ErrorKind::Correctable | ErrorKind::Read | ErrorKind::Write | ErrorKind::Erase => {
                ErrorClass::Transparent
            }
            ErrorKind::FinalRead
            | ErrorKind::FinalWrite
            | ErrorKind::Meta
            | ErrorKind::Response
            | ErrorKind::Timeout
            | ErrorKind::Uncorrectable => ErrorClass::NonTransparent,
        }
    }

    /// True if this error type is non-transparent (user-visible).
    #[inline]
    pub fn is_non_transparent(self) -> bool {
        self.class() == ErrorClass::NonTransparent
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ErrorKind::Correctable => "correctable error",
            ErrorKind::Erase => "erase error",
            ErrorKind::FinalRead => "final read error",
            ErrorKind::FinalWrite => "final write error",
            ErrorKind::Meta => "meta error",
            ErrorKind::Read => "read error",
            ErrorKind::Response => "response error",
            ErrorKind::Timeout => "timeout error",
            ErrorKind::Uncorrectable => "uncorrectable error",
            ErrorKind::Write => "write error",
        }
    }

    /// Short identifier suitable for column headers and feature names.
    pub fn short_name(self) -> &'static str {
        match self {
            ErrorKind::Correctable => "corr",
            ErrorKind::Erase => "erase",
            ErrorKind::FinalRead => "final_read",
            ErrorKind::FinalWrite => "final_write",
            ErrorKind::Meta => "meta",
            ErrorKind::Read => "read",
            ErrorKind::Response => "response",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Uncorrectable => "uncorr",
            ErrorKind::Write => "write",
        }
    }

    /// The non-transparent error kinds, in canonical order.
    pub fn non_transparent() -> impl Iterator<Item = ErrorKind> {
        Self::ALL.into_iter().filter(|k| k.is_non_transparent())
    }

    /// The transparent error kinds, in canonical order.
    pub fn transparent() -> impl Iterator<Item = ErrorKind> {
        Self::ALL.into_iter().filter(|k| !k.is_non_transparent())
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_and_order() {
        for (i, k) in ErrorKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(ErrorKind::from_index(i), *k);
        }
    }

    #[test]
    fn transparency_split_matches_paper() {
        // Section 2: transparent = {correctable, read, write, erase};
        // non-transparent = {final read, final write, meta, response,
        // timeout, uncorrectable}.
        let transparent: Vec<_> = ErrorKind::transparent().collect();
        assert_eq!(
            transparent,
            vec![
                ErrorKind::Correctable,
                ErrorKind::Erase,
                ErrorKind::Read,
                ErrorKind::Write
            ]
        );
        assert_eq!(ErrorKind::non_transparent().count(), 6);
        assert!(ErrorKind::Uncorrectable.is_non_transparent());
        assert!(ErrorKind::FinalRead.is_non_transparent());
        assert!(!ErrorKind::Correctable.is_non_transparent());
    }

    #[test]
    fn counts_are_consistent() {
        assert_eq!(ErrorKind::ALL.len(), ErrorKind::COUNT);
        assert_eq!(
            ErrorKind::transparent().count() + ErrorKind::non_transparent().count(),
            ErrorKind::COUNT
        );
    }
}
