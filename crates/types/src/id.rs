//! Drive identifiers.


/// Unique identifier for a drive.
///
/// In the original trace this is a hash of the drive's serial number; in the
/// simulator it is a dense index into the fleet. `DriveId` is a newtype so
/// the two cannot be confused with ordinary integers (e.g. day indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DriveId(pub u32);

// Serialized transparently, as the bare integer.
impl crate::json::ToJson for DriveId {
    fn to_json(&self) -> crate::json::Value {
        crate::json::Value::UInt(self.0 as u64)
    }
}

impl crate::json::FromJson for DriveId {
    fn from_json(v: &crate::json::Value) -> Result<Self, crate::json::JsonError> {
        u32::from_json(v).map(DriveId)
    }
}

impl DriveId {
    /// Returns the raw index value.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for DriveId {
    #[inline]
    fn from(v: u32) -> Self {
        DriveId(v)
    }
}

impl std::fmt::Display for DriveId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "drive-{:06}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_zero_padded() {
        assert_eq!(DriveId(7).to_string(), "drive-000007");
        assert_eq!(DriveId(123456).to_string(), "drive-123456");
    }

    #[test]
    fn ordering_matches_raw_value() {
        let mut ids = vec![DriveId(3), DriveId(1), DriveId(2)];
        ids.sort();
        assert_eq!(ids, vec![DriveId(1), DriveId(2), DriveId(3)]);
    }

    #[test]
    fn serde_is_transparent() {
        let json = crate::json::to_string(&DriveId(42));
        assert_eq!(json, "42");
        let back: DriveId = crate::json::from_str(&json).unwrap();
        assert_eq!(back, DriveId(42));
    }
}
