//! Minimal JSON support: a document model, a writer (compact and pretty),
//! a recursive-descent parser, and [`ToJson`] / [`FromJson`] conversion
//! traits.
//!
//! In-tree substrate for the `serde`/`serde_json` surface this workspace
//! used: struct ⇄ object, unit enum ⇄ string, `Vec`/array/tuple ⇄ array,
//! `Option` ⇄ `null`-or-value, and newtype ids serialized transparently.
//! Implementations for concrete types are generated with the
//! [`impl_json_struct!`](crate::impl_json_struct) and
//! [`impl_json_enum!`](crate::impl_json_enum) macros.
//!
//! Numbers keep integer fidelity: `u64`/`i64` round-trip exactly (they are
//! stored as integers, not `f64`), and non-finite floats serialize as
//! `null` (matching `serde_json`'s lossy behaviour) and parse back as NaN.

use std::fmt::Write as _;

/// A parsed JSON document.
///
/// Object members preserve insertion order (a `Vec`, not a map): the
/// documents handled here are small, and order-preservation keeps output
/// deterministic and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer that fits in `i64` (only produced for negative values).
    Int(i64),
    /// A non-negative integer (kept exact up to `u64::MAX`).
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is numeric (`null` reads as NaN).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Maximum nesting depth [`parse`] accepts before returning
/// [`JsonError::TooDeep`]. Deep enough for any document this workspace
/// produces, shallow enough that adversarial input cannot overflow the
/// parser's recursion stack.
pub const MAX_DEPTH: usize = 128;

/// Error produced by parsing or by [`FromJson`] conversions.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// Malformed document or failed conversion, with a human-readable
    /// message (parse errors carry a byte position).
    Msg(String),
    /// Nesting exceeded [`MAX_DEPTH`] at the given byte offset; returned
    /// instead of overflowing the recursion stack on adversarial input.
    TooDeep {
        /// Byte offset where one nesting level too many opened.
        at: usize,
    },
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::Msg(m) => write!(f, "json error: {m}"),
            JsonError::TooDeep { at } => write!(
                f,
                "json error: nesting deeper than {MAX_DEPTH} levels at byte {at}"
            ),
        }
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Message-carrying error.
    pub fn msg(message: impl Into<String>) -> Self {
        JsonError::Msg(message.into())
    }

    /// Conversion-failure error: expected `what`, found `v`.
    pub fn expected(what: &str, v: &Value) -> Self {
        let found = match v {
            Value::Null => "null".to_string(),
            Value::Bool(b) => format!("bool {b}"),
            Value::Int(i) => format!("number {i}"),
            Value::UInt(u) => format!("number {u}"),
            Value::Float(f) => format!("number {f}"),
            Value::Str(s) => format!("string {s:?}"),
            Value::Arr(a) => format!("array of {} items", a.len()),
            Value::Obj(o) => format!("object with {} members", o.len()),
        };
        JsonError::msg(format!("expected {what}, found {found}"))
    }
}

/// Conversion into the JSON document model.
pub trait ToJson {
    /// Build the [`Value`] representing `self`.
    fn to_json(&self) -> Value;
}

/// Fallible conversion out of the JSON document model.
pub trait FromJson: Sized {
    /// Reconstruct `Self` from a [`Value`].
    fn from_json(v: &Value) -> Result<Self, JsonError>;
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{}` on f64 is the shortest representation that round-trips.
        let mut text = format!("{f}");
        // Keep floats syntactically floats (serde_json prints 1.0, not 1),
        // so integer-valued floats round-trip as Float rather than UInt.
        if !text.contains(['.', 'e', 'E']) {
            text.push_str(".0");
        }
        out.push_str(&text);
    } else {
        // serde_json serializes non-finite floats as null.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(members) => {
            out.push('{');
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(PAD);
                }
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(PAD);
            }
            out.push(']');
        }
        Value::Obj(members) if !members.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                for _ in 0..=indent {
                    out.push_str(PAD);
                }
                write_escaped(out, k);
                out.push_str(": ");
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            for _ in 0..indent {
                out.push_str(PAD);
            }
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

/// Serialize to a compact JSON string.
pub fn to_string(value: &impl ToJson) -> String {
    let mut out = String::new();
    write_compact(&value.to_json(), &mut out);
    out
}

/// Serialize to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty(value: &impl ToJson) -> String {
    let mut out = String::new();
    write_pretty(&value.to_json(), &mut out, 0);
    out
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{kw}'")))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.skip_ws();
        if depth >= MAX_DEPTH {
            return Err(JsonError::TooDeep { at: self.pos });
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let value = self.parse_value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Obj(members)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require a trailing \uXXXX.
                            self.expect_byte(b'\\')?;
                            self.expect_byte(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: re-decode from the original slice.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid utf-8 byte in string")),
                    };
                    let end = start + width;
                    let slice = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf-8 sequence"))?;
                    let s = std::str::from_utf8(slice)
                        .map_err(|_| self.err("invalid utf-8 sequence in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .bump()
                .and_then(|b| (b as char).to_digit(16))
                .ok_or_else(|| self.err("expected 4 hex digits"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::msg(format!("invalid number at byte {start}")))?;
        if !is_float {
            // Integer fidelity: keep u64/i64 exact when they fit.
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<u64>() {
                    if i <= i64::MAX as u64 {
                        return Ok(Value::Int(-(i as i64)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| JsonError::msg(format!("invalid number {text:?} at byte {start}")))
    }
}

/// Parse a JSON string into the document model.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Parse a JSON string directly into a [`FromJson`] type.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json(&parse(input)?)
}

// ---------------------------------------------------------------------------
// Trait implementations for primitives and containers
// ---------------------------------------------------------------------------

macro_rules! impl_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl FromJson for $t {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                let u = v.as_u64().ok_or_else(|| JsonError::expected(stringify!($t), v))?;
                <$t>::try_from(u).map_err(|_| JsonError::msg(format!(
                    "{u} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);

impl ToJson for i64 {
    fn to_json(&self) -> Value {
        if *self >= 0 {
            Value::UInt(*self as u64)
        } else {
            Value::Int(*self)
        }
    }
}

impl FromJson for i64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match *v {
            Value::Int(i) => Ok(i),
            Value::UInt(u) => {
                i64::try_from(u).map_err(|_| JsonError::msg(format!("{u} out of range for i64")))
            }
            _ => Err(JsonError::expected("i64", v)),
        }
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::expected("number", v))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(JsonError::expected("bool", v)),
        }
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError::expected("string", v))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(t) => t.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(T::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(T::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_json).collect(),
            _ => Err(JsonError::expected("array", v)),
        }
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(T::to_json).collect())
    }
}

impl<T: FromJson, const N: usize> FromJson for [T; N] {
    fn from_json(v: &Value) -> Result<Self, JsonError> {
        let items: Vec<T> = Vec::from_json(v)?;
        let n = items.len();
        items
            .try_into()
            .map_err(|_| JsonError::msg(format!("expected array of {N} items, found {n}")))
    }
}

macro_rules! impl_json_tuple {
    ($n:literal; $($t:ident . $idx:tt),+) => {
        impl<$($t: ToJson),+> ToJson for ($($t,)+) {
            fn to_json(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($t: FromJson),+> FromJson for ($($t,)+) {
            fn from_json(v: &Value) -> Result<Self, JsonError> {
                match v {
                    Value::Arr(items) if items.len() == $n => Ok((
                        $($t::from_json(&items[$idx])?,)+
                    )),
                    _ => Err(JsonError::expected(concat!("array of ", $n, " items"), v)),
                }
            }
        }
    };
}

impl_json_tuple!(2; A.0, B.1);
impl_json_tuple!(3; A.0, B.1, C.2);
impl_json_tuple!(4; A.0, B.1, C.2, D.3);

/// Fetch and convert a required object member; used by the impl macros.
pub fn field<T: FromJson>(v: &Value, name: &str) -> Result<T, JsonError> {
    let member = v
        .get(name)
        .ok_or_else(|| JsonError::msg(format!("missing field {name:?}")))?;
    T::from_json(member).map_err(|e| match e {
        JsonError::Msg(m) => JsonError::msg(format!("field {name:?}: {m}")),
        other => other,
    })
}

/// Implement [`ToJson`]/[`FromJson`] for a named-field struct, mapping it
/// to a JSON object with one member per listed field (serde's default
/// struct representation).
#[macro_export]
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::Value::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Value)
                -> Result<Self, $crate::json::JsonError>
            {
                Ok($ty {
                    $($field: $crate::json::field(v, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Implement [`ToJson`]/[`FromJson`] for a unit-variant enum, mapping each
/// variant to its name as a JSON string (serde's default unit-variant
/// representation).
#[macro_export]
macro_rules! impl_json_enum {
    ($ty:ident { $($variant:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                let name = match self {
                    $($ty::$variant => stringify!($variant),)+
                };
                $crate::json::Value::Str(name.to_string())
            }
        }
        impl $crate::json::FromJson for $ty {
            fn from_json(v: &$crate::json::Value)
                -> Result<Self, $crate::json::JsonError>
            {
                match v.as_str() {
                    $(Some(stringify!($variant)) => Ok($ty::$variant),)+
                    _ => Err($crate::json::JsonError::expected(
                        concat!("variant of ", stringify!($ty)), v)),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Point {
        x: f64,
        label: String,
        count: u64,
    }
    impl_json_struct!(Point { x, label, count });

    #[derive(Debug, PartialEq)]
    enum Color {
        Red,
        Green,
    }
    impl_json_enum!(Color { Red, Green });

    #[test]
    fn struct_roundtrip_and_shape() {
        let p = Point { x: 1.5, label: "a\"b".to_string(), count: u64::MAX };
        let s = to_string(&p);
        assert_eq!(s, format!("{{\"x\":1.5,\"label\":\"a\\\"b\",\"count\":{}}}", u64::MAX));
        let back: Point = from_str(&s).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn enum_as_string() {
        assert_eq!(to_string(&Color::Green), "\"Green\"");
        assert_eq!(from_str::<Color>("\"Red\"").unwrap(), Color::Red);
        assert!(from_str::<Color>("\"Blue\"").is_err());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u32, Some(2.5f64)), (3, None)];
        let s = to_string(&v);
        assert_eq!(s, "[[1,2.5],[3,null]]");
        let back: Vec<(u32, Option<f64>)> = from_str(&s).unwrap();
        assert_eq!(back, v);
        let arr = [1u64, 2, 3];
        let back: [u64; 3] = from_str(&to_string(&arr)).unwrap();
        assert_eq!(back, arr);
        assert!(from_str::<[u64; 4]>("[1,2,3]").is_err());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN), "null");
        assert_eq!(to_string(&f64::INFINITY), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn integer_fidelity_at_u64_range() {
        let giant = u64::MAX - 1;
        let back: u64 = from_str(&to_string(&giant)).unwrap();
        assert_eq!(back, giant);
        let neg: i64 = from_str("-42").unwrap();
        assert_eq!(neg, -42);
    }

    #[test]
    fn parser_handles_whitespace_escapes_and_unicode() {
        let v = parse(" { \"k\" : [ 1 , \"\\u00e9\\n\\uD83D\\uDE00\" , true ] } ").unwrap();
        let arr = v.get("k").unwrap();
        match arr {
            Value::Arr(items) => {
                assert_eq!(items[0], Value::UInt(1));
                assert_eq!(items[1], Value::Str("é\n😀".to_string()));
                assert_eq!(items[2], Value::Bool(true));
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{\"a\" 1}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn pretty_output_parses_back() {
        let p = Point { x: -0.25, label: "hi".into(), count: 7 };
        let pretty = to_string_pretty(&p);
        assert!(pretty.contains("\n  \"x\": -0.25"));
        let back: Point = from_str(&pretty).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn float_roundtrip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 6.02214076e23, -0.0] {
            let back: f64 = from_str(&to_string(&f)).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }
}
