//! # ssd-types
//!
//! Data model for SSD field telemetry, mirroring the log schema described in
//! Section 2 of *"SSD Failures in the Field: Symptoms, Causes, and Prediction
//! Models"* (SC '19).
//!
//! The trace consists of **daily performance logs** for three MLC SSD models
//! collected over six years. Each drive is identified by a hashed serial
//! number ([`DriveId`]); for each day of operation a [`DailyReport`] records
//! workload counters (reads, writes, erases), cumulative program–erase
//! cycles, status flags, bad-block counts, and per-day counts for ten error
//! types ([`ErrorKind`]). Separately, **swap events** ([`SwapEvent`]) mark
//! the moments failed drives are extracted for repair.
//!
//! The types in this crate are the interchange boundary of the whole
//! workspace: the simulator (`ssd-sim`) produces them, and every analysis
//! in `ssd-field-study-core` consumes them. A user with access to a real
//! field trace can deserialize it into these types (all types are
//! JSON-enabled via the in-tree [`json`] module and a compact binary codec
//! is provided in [`codec`]) and run the identical analyses.
//!
//! ## Layout
//!
//! * [`id`] — drive identifiers.
//! * [`model`] — the three MLC drive models (MLC-A, MLC-B, MLC-D).
//! * [`error_kind`] — the ten-error taxonomy and the transparent /
//!   non-transparent split.
//! * [`counts`] — dense per-day error counters indexed by [`ErrorKind`].
//! * [`report`] — the daily report record.
//! * [`swap`] — swap (repair-extraction) events.
//! * [`log`] — a single drive's full history and fleet-level traces.
//! * [`codec`] — compact binary serialization for large traces, resident
//!   and streaming ([`codec::TraceDecoder`] / [`codec::TraceEncoder`]).
//! * [`source`] — uniform [`source::TraceSource`] / [`source::TraceReader`]
//!   access over archive / JSON / CSV / in-memory traces.
//! * [`json`] — minimal JSON writer/parser and conversion traits (the
//!   workspace builds offline, so this replaces `serde`/`serde_json`).
//! * [`cast`] — checked numeric conversions with the source type spelled
//!   out, backing the `lossy-cast` lint's fix-it guidance.

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod cast;
pub mod codec;
pub mod counts;
pub mod csv;
pub mod error_kind;
pub mod id;
pub mod json;
pub mod log;
pub mod model;
pub mod report;
pub mod source;
pub mod swap;

pub use counts::ErrorCounts;
pub use error_kind::{ErrorClass, ErrorKind};
pub use id::DriveId;
pub use log::{DriveLog, FleetTrace};
pub use model::DriveModel;
pub use report::DailyReport;
pub use swap::SwapEvent;

/// Number of days in a (simulation) year. The paper reports durations in
/// days, months, and years; we use the 365-day convention throughout.
pub const DAYS_PER_YEAR: u32 = 365;

/// Number of days in a (simulation) month, following the paper's convention
/// of 30-day months when bucketing drive age.
pub const DAYS_PER_MONTH: u32 = 30;

/// Age boundary (days) between *infant* ("young") and *mature* ("old")
/// drives. Section 4.1 identifies a ~90-day high-mortality infancy period
/// and all young/old splits in the paper use this boundary.
pub const INFANCY_DAYS: u32 = 90;

/// Manufacturer P/E-cycle endurance limit for all three drive models
/// (Section 2: "For our drive models, this limit is 3000 cycles").
pub const PE_CYCLE_LIMIT: u32 = 3000;
