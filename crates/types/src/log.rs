//! Per-drive histories and fleet-level traces.

use crate::{DailyReport, DriveId, DriveModel, SwapEvent};

/// The complete observed history of one drive: its daily reports (sorted by
/// age, with gaps where the drive did not report) and its swap events
/// (sorted by swap day).
#[derive(Debug, Clone, PartialEq)]
pub struct DriveLog {
    /// Unique drive identifier.
    pub id: DriveId,
    /// Which of the three MLC models this drive is.
    pub model: DriveModel,
    /// Daily reports, strictly increasing in `age_days`. Missing days are
    /// simply absent (non-reporting periods).
    pub reports: Vec<DailyReport>,
    /// Swap events, strictly increasing in `swap_day`.
    pub swaps: Vec<SwapEvent>,
    /// Importance-sampling log-weight `ln(p/q)` assigned at generation
    /// time. Exactly `0.0` for uniformly sampled drives (and for drives
    /// decoded from legacy weightless archives); weighted estimators
    /// multiply by `exp(log_weight)`.
    pub log_weight: f64,
}

crate::impl_json_struct!(DriveLog {
    id,
    model,
    reports,
    swaps,
    log_weight
});

impl DriveLog {
    /// Creates an empty log for a drive.
    pub fn new(id: DriveId, model: DriveModel) -> Self {
        DriveLog {
            id,
            model,
            reports: Vec::new(),
            swaps: Vec::new(),
            log_weight: 0.0,
        }
    }

    /// The drive's maximum observed age: the age of its last report or last
    /// lifecycle event ("Max Age" in Figure 1). Returns 0 for empty logs.
    pub fn max_age_days(&self) -> u32 {
        let last_report = self.reports.last().map_or(0, |r| r.age_days);
        let last_swap = self.swaps.last().map_or(0, |s| {
            s.reentry_day.unwrap_or(s.swap_day)
        });
        last_report.max(last_swap)
    }

    /// Number of drive days recorded in the error log ("Data Count" in
    /// Figure 1).
    #[inline]
    pub fn data_count(&self) -> usize {
        self.reports.len()
    }

    /// True if the drive was observed to fail (swap) at least once.
    #[inline]
    pub fn ever_failed(&self) -> bool {
        !self.swaps.is_empty()
    }

    /// Validates internal ordering invariants; returns a description of the
    /// first violation, if any. Used by tests and by trace ingestion.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.reports.windows(2) {
            if w[0].age_days >= w[1].age_days {
                return Err(format!(
                    "{}: reports not strictly increasing at age {} -> {}",
                    self.id, w[0].age_days, w[1].age_days
                ));
            }
        }
        for w in self.swaps.windows(2) {
            if w[0].swap_day >= w[1].swap_day {
                return Err(format!(
                    "{}: swaps not strictly increasing at day {} -> {}",
                    self.id, w[0].swap_day, w[1].swap_day
                ));
            }
        }
        for s in &self.swaps {
            if let Some(re) = s.reentry_day {
                if re < s.swap_day {
                    return Err(format!(
                        "{}: re-entry day {} precedes swap day {}",
                        self.id, re, s.swap_day
                    ));
                }
            }
        }
        // Cumulative counters must be non-decreasing over reports.
        for w in self.reports.windows(2) {
            if w[1].pe_cycles < w[0].pe_cycles {
                return Err(format!("{}: P/E cycles decreased", self.id));
            }
            if w[1].factory_bad_blocks < w[0].factory_bad_blocks {
                return Err(format!("{}: factory bad blocks decreased", self.id));
            }
            if w[1].grown_bad_blocks < w[0].grown_bad_blocks {
                return Err(format!("{}: grown bad blocks decreased", self.id));
            }
        }
        Ok(())
    }
}

/// A fleet-level trace: the logs of every drive in the observation window.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetTrace {
    /// Length of the observation window in days (the paper's trace spans
    /// six years).
    pub horizon_days: u32,
    /// One log per drive.
    pub drives: Vec<DriveLog>,
}

crate::impl_json_struct!(FleetTrace { horizon_days, drives });

impl FleetTrace {
    /// Creates an empty trace with the given horizon.
    pub fn new(horizon_days: u32) -> Self {
        FleetTrace {
            horizon_days,
            drives: Vec::new(),
        }
    }

    /// Total number of drives.
    #[inline]
    pub fn n_drives(&self) -> usize {
        self.drives.len()
    }

    /// Total number of recorded drive days across the fleet.
    pub fn total_drive_days(&self) -> usize {
        self.drives.iter().map(|d| d.data_count()).sum()
    }

    /// Total number of swap events (= catastrophic failures) in the trace.
    pub fn total_swaps(&self) -> usize {
        self.drives.iter().map(|d| d.swaps.len()).sum()
    }

    /// Iterate over drives of one model.
    pub fn drives_of(&self, model: DriveModel) -> impl Iterator<Item = &DriveLog> {
        self.drives.iter().filter(move |d| d.model == model)
    }

    /// Validates every drive log. Returns the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        for d in &self.drives {
            d.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(age: u32) -> DailyReport {
        DailyReport::empty(age)
    }

    #[test]
    fn max_age_considers_reports_and_swaps() {
        let mut log = DriveLog::new(DriveId(0), DriveModel::MlcA);
        assert_eq!(log.max_age_days(), 0);
        log.reports.push(report(5));
        log.reports.push(report(9));
        assert_eq!(log.max_age_days(), 9);
        log.swaps.push(SwapEvent {
            swap_day: 12,
            reentry_day: None,
        });
        assert_eq!(log.max_age_days(), 12);
        log.swaps.push(SwapEvent {
            swap_day: 20,
            reentry_day: Some(40),
        });
        assert_eq!(log.max_age_days(), 40);
    }

    #[test]
    fn validate_rejects_unsorted_reports() {
        let mut log = DriveLog::new(DriveId(1), DriveModel::MlcB);
        log.reports.push(report(3));
        log.reports.push(report(3));
        assert!(log.validate().is_err());
    }

    #[test]
    fn validate_rejects_decreasing_pe() {
        let mut log = DriveLog::new(DriveId(1), DriveModel::MlcB);
        let mut a = report(1);
        a.pe_cycles = 10;
        let mut b = report(2);
        b.pe_cycles = 9;
        log.reports.push(a);
        log.reports.push(b);
        assert!(log.validate().unwrap_err().contains("P/E"));
    }

    #[test]
    fn validate_rejects_reentry_before_swap() {
        let mut log = DriveLog::new(DriveId(1), DriveModel::MlcD);
        log.swaps.push(SwapEvent {
            swap_day: 10,
            reentry_day: Some(5),
        });
        assert!(log.validate().is_err());
    }

    #[test]
    fn fleet_aggregates() {
        let mut t = FleetTrace::new(100);
        let mut a = DriveLog::new(DriveId(0), DriveModel::MlcA);
        a.reports.push(report(0));
        a.reports.push(report(1));
        a.swaps.push(SwapEvent {
            swap_day: 2,
            reentry_day: None,
        });
        let mut b = DriveLog::new(DriveId(1), DriveModel::MlcB);
        b.reports.push(report(0));
        t.drives.push(a);
        t.drives.push(b);
        assert_eq!(t.n_drives(), 2);
        assert_eq!(t.total_drive_days(), 3);
        assert_eq!(t.total_swaps(), 1);
        assert_eq!(t.drives_of(DriveModel::MlcA).count(), 1);
        assert_eq!(t.drives_of(DriveModel::MlcD).count(), 0);
        assert!(t.validate().is_ok());
    }
}
