//! The three MLC drive models studied by the paper.

/// MLC SSD model, named as in the paper (and in the prior FAST '16 /
/// USENIX ATC '17 studies of the same trace): MLC-A, MLC-B, MLC-D.
///
/// All three models come from the same vendor, have 480 GB capacity,
/// ~50 nm lithography, custom firmware, and a 3000 P/E-cycle endurance
/// limit; they differ in their field failure behaviour (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DriveModel {
    /// MLC-A: lowest observed failure incidence (6.95% of drives).
    MlcA,
    /// MLC-B: highest observed failure incidence (14.3% of drives).
    MlcB,
    /// MLC-D: intermediate failure incidence (12.5% of drives).
    MlcD,
}

crate::impl_json_enum!(DriveModel { MlcA, MlcB, MlcD });

impl DriveModel {
    /// All models, in canonical (paper) order.
    pub const ALL: [DriveModel; 3] = [DriveModel::MlcA, DriveModel::MlcB, DriveModel::MlcD];

    /// Short display name used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DriveModel::MlcA => "MLC-A",
            DriveModel::MlcB => "MLC-B",
            DriveModel::MlcD => "MLC-D",
        }
    }

    /// Dense index (0, 1, 2) for array-indexed per-model aggregation.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            DriveModel::MlcA => 0,
            DriveModel::MlcB => 1,
            DriveModel::MlcD => 2,
        }
    }

    /// Inverse of [`DriveModel::index`]. Panics on out-of-range input.
    pub fn from_index(i: usize) -> Self {
        Self::ALL[i]
    }
}

impl std::fmt::Display for DriveModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for m in DriveModel::ALL {
            assert_eq!(DriveModel::from_index(m.index()), m);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(DriveModel::MlcA.name(), "MLC-A");
        assert_eq!(DriveModel::MlcB.name(), "MLC-B");
        assert_eq!(DriveModel::MlcD.name(), "MLC-D");
    }

    #[test]
    fn all_is_exhaustive_and_ordered() {
        assert_eq!(DriveModel::ALL.len(), 3);
        for (i, m) in DriveModel::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
    }
}
