//! The daily performance report record (Section 2 of the paper).

use crate::counts::ErrorCounts;

/// One day of drive activity, as reported in the error log.
///
/// Field-for-field this mirrors the metrics enumerated in Section 2:
/// a timestamp (here: whole days since the beginning of the drive's
/// lifetime), daily read/write/erase operation counts, the cumulative P/E
/// cycle count, two status flags (dead, read-only), factory and grown
/// bad-block counts (both cumulative), and the per-day error counters.
///
/// Days on which the drive reports nothing (complete failure, or simply
/// missing from the log) have **no** `DailyReport`; absence of a report is
/// itself a signal used by the failure-point definition in Section 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DailyReport {
    /// Drive age in whole days at the time of this report (day 0 = first
    /// day of the drive's lifetime). The original log reports microseconds
    /// since lifetime start; daily summaries make days the natural unit.
    pub age_days: u32,
    /// Number of read operations performed during this day.
    pub read_ops: u64,
    /// Number of write operations performed during this day.
    pub write_ops: u64,
    /// Number of erase operations performed during this day.
    pub erase_ops: u64,
    /// Cumulative program–erase cycles over the drive's lifetime.
    pub pe_cycles: u32,
    /// Status flag: the drive has died.
    pub status_dead: bool,
    /// Status flag: the drive is operating in read-only mode.
    pub status_read_only: bool,
    /// Cumulative count of factory bad blocks (non-operational at purchase).
    pub factory_bad_blocks: u32,
    /// Cumulative count of grown bad blocks (blocks retired after a
    /// non-transparent error occurred in them).
    pub grown_bad_blocks: u32,
    /// Counts of each error type that occurred during this day.
    pub errors: ErrorCounts,
}

crate::impl_json_struct!(DailyReport {
    age_days,
    read_ops,
    write_ops,
    erase_ops,
    pe_cycles,
    status_dead,
    status_read_only,
    factory_bad_blocks,
    grown_bad_blocks,
    errors,
});

impl DailyReport {
    /// A blank report for a given age with all counters zero.
    pub fn empty(age_days: u32) -> Self {
        DailyReport {
            age_days,
            read_ops: 0,
            write_ops: 0,
            erase_ops: 0,
            pe_cycles: 0,
            status_dead: false,
            status_read_only: false,
            factory_bad_blocks: 0,
            grown_bad_blocks: 0,
            errors: ErrorCounts::zero(),
        }
    }

    /// Total cumulative bad blocks (factory + grown).
    #[inline]
    pub fn bad_blocks(&self) -> u32 {
        self.factory_bad_blocks + self.grown_bad_blocks
    }

    /// True if the drive serviced any read or write operations this day.
    ///
    /// Section 3 defines *inactivity* as "an absence of read or write
    /// operations provisioned to the drive"; a run of inactive days before
    /// a swap marks the soft removal from production.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.read_ops > 0 || self.write_ops > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_kind::ErrorKind;

    #[test]
    fn empty_report_is_inactive_and_errorless() {
        let r = DailyReport::empty(10);
        assert_eq!(r.age_days, 10);
        assert!(!r.is_active());
        assert!(r.errors.is_zero());
        assert_eq!(r.bad_blocks(), 0);
    }

    #[test]
    fn activity_requires_reads_or_writes() {
        let mut r = DailyReport::empty(0);
        r.erase_ops = 100; // erases alone do not count as provisioned work
        assert!(!r.is_active());
        r.read_ops = 1;
        assert!(r.is_active());
        r.read_ops = 0;
        r.write_ops = 1;
        assert!(r.is_active());
    }

    #[test]
    fn bad_blocks_sums_factory_and_grown() {
        let mut r = DailyReport::empty(0);
        r.factory_bad_blocks = 3;
        r.grown_bad_blocks = 4;
        assert_eq!(r.bad_blocks(), 7);
    }

    #[test]
    fn serde_roundtrip() {
        let mut r = DailyReport::empty(42);
        r.write_ops = 1_000_000;
        r.errors.set(ErrorKind::Uncorrectable, 9);
        let json = crate::json::to_string(&r);
        let back: DailyReport = crate::json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
