//! Uniform access to fleet traces wherever they live — binary archive,
//! JSON export, CSV directory, or already in memory.
//!
//! The analysis binaries (`ssdstat`, `ssdgen`, `repro`) all need to turn
//! "a path the user gave us" into drives; [`TraceSource`] centralizes the
//! format sniffing that used to be ad-hoc per binary, and [`TraceReader`]
//! gives every format the same per-drive pull interface. Binary archives
//! stream through [`TraceDecoder`] at constant memory; the text formats
//! (which have no framing amenable to streaming) load resident and are
//! then served drive-by-drive, so callers write one fold loop regardless
//! of format.
//!
//! ```no_run
//! use ssd_types::source::TraceSource;
//! use ssd_types::{DriveId, DriveLog, DriveModel};
//!
//! let source = TraceSource::from_path("fleet.ssdfs", None)?;
//! let mut reader = source.open()?;
//! let mut drive = DriveLog::new(DriveId(0), DriveModel::from_index(0));
//! let mut total_reports = 0usize;
//! while reader.next_drive_into(&mut drive)? {
//!     total_reports += drive.reports.len();
//! }
//! # Ok::<(), ssd_types::source::TraceReadError>(())
//! ```

use crate::codec::{decode_trace, trace_from_json, DecodeError, TraceDecoder};
use crate::csv::{read_trace_csv, CsvError};
use crate::json::JsonError;
use crate::{DriveId, DriveLog, DriveModel, FleetTrace};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};

/// Errors arising while resolving or reading a [`TraceSource`].
#[derive(Debug)]
#[non_exhaustive]
pub enum TraceReadError {
    /// Filesystem-level failure (open/read), with the path involved.
    Io {
        /// The path being accessed.
        path: PathBuf,
        /// The underlying I/O error.
        error: std::io::Error,
    },
    /// The binary archive failed to decode.
    Decode(DecodeError),
    /// The JSON export failed to parse.
    Json(JsonError),
    /// The CSV pair failed to parse.
    Csv(CsvError),
    /// The trace decoded but violates [`FleetTrace::validate`] invariants.
    Invalid(String),
    /// A CSV directory was given without an observation horizon (CSV files
    /// do not carry one).
    MissingHorizon,
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceReadError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            TraceReadError::Decode(e) => write!(f, "decode archive: {e}"),
            TraceReadError::Json(e) => write!(f, "parse json trace: {e}"),
            TraceReadError::Csv(e) => write!(f, "parse csv trace: {e}"),
            TraceReadError::Invalid(msg) => write!(f, "invalid trace: {msg}"),
            TraceReadError::MissingHorizon => {
                write!(f, "--horizon is required for CSV directories")
            }
        }
    }
}

impl std::error::Error for TraceReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceReadError::Io { error, .. } => Some(error),
            TraceReadError::Decode(e) => Some(e),
            TraceReadError::Json(e) => Some(e),
            TraceReadError::Csv(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for TraceReadError {
    fn from(e: DecodeError) -> Self {
        TraceReadError::Decode(e)
    }
}

impl From<JsonError> for TraceReadError {
    fn from(e: JsonError) -> Self {
        TraceReadError::Json(e)
    }
}

impl From<CsvError> for TraceReadError {
    fn from(e: CsvError) -> Self {
        TraceReadError::Csv(e)
    }
}

fn io_err(path: &Path, error: std::io::Error) -> TraceReadError {
    TraceReadError::Io {
        path: path.to_path_buf(),
        error,
    }
}

/// Where a fleet trace lives, with the format already determined.
///
/// | Variant     | On disk                          | [`open`] behavior      |
/// |-------------|----------------------------------|------------------------|
/// | `Archive`   | varint binary (`.ssdfs`)         | streams drive-by-drive |
/// | `Json`      | `.json` export                   | loads resident         |
/// | `CsvDir`    | `reports.csv` + `swaps.csv` dir  | loads resident         |
/// | `InMemory`  | already a [`FleetTrace`]         | borrows, no copy       |
///
/// [`open`]: TraceSource::open
#[derive(Debug)]
pub enum TraceSource {
    /// A compact binary archive produced by `ssd_types::codec`.
    Archive(PathBuf),
    /// A JSON trace export.
    Json(PathBuf),
    /// A directory holding `reports.csv` and `swaps.csv`.
    CsvDir {
        /// The directory containing the two CSV files.
        dir: PathBuf,
        /// Observation-window length, which CSVs do not carry.
        horizon_days: u32,
    },
    /// A trace already resident in memory.
    InMemory(FleetTrace),
}

impl TraceSource {
    /// Classifies `path` by shape: a directory is a CSV pair (requiring
    /// `horizon`), a `.json` extension is a JSON export, anything else is
    /// a binary archive. This is the sniffing contract all binaries share.
    pub fn from_path(
        path: impl AsRef<Path>,
        horizon: Option<u32>,
    ) -> Result<TraceSource, TraceReadError> {
        let path = path.as_ref();
        if path.is_dir() {
            let horizon_days = horizon.ok_or(TraceReadError::MissingHorizon)?;
            return Ok(TraceSource::CsvDir {
                dir: path.to_path_buf(),
                horizon_days,
            });
        }
        match path.extension().and_then(|e| e.to_str()) {
            Some("json") => Ok(TraceSource::Json(path.to_path_buf())),
            _ => Ok(TraceSource::Archive(path.to_path_buf())),
        }
    }

    /// Loads the full trace into memory. Prefer [`open`](TraceSource::open)
    /// + a per-drive fold when the analysis does not need random access:
    /// for `Archive` sources this call materializes every drive.
    pub fn load(&self) -> Result<FleetTrace, TraceReadError> {
        match self {
            TraceSource::Archive(path) => {
                let bytes = std::fs::read(path).map_err(|e| io_err(path, e))?;
                Ok(decode_trace(&bytes)?)
            }
            TraceSource::Json(path) => {
                let body = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
                Ok(trace_from_json(&body)?)
            }
            TraceSource::CsvDir { dir, horizon_days } => read_csv_dir(dir, *horizon_days),
            TraceSource::InMemory(trace) => Ok(trace.clone()),
        }
    }

    /// Opens the source for per-drive reading. Binary archives stream at
    /// constant memory; other formats load resident and then serve
    /// drive-by-drive through the same interface.
    pub fn open(&self) -> Result<TraceReader<'_>, TraceReadError> {
        let inner = match self {
            TraceSource::Archive(path) => {
                let file = File::open(path).map_err(|e| io_err(path, e))?;
                Inner::Stream(TraceDecoder::new(BufReader::new(file))?)
            }
            TraceSource::Json(path) => {
                let body = std::fs::read_to_string(path).map_err(|e| io_err(path, e))?;
                Inner::Resident {
                    trace: trace_from_json(&body)?,
                    next: 0,
                }
            }
            TraceSource::CsvDir { dir, horizon_days } => Inner::Resident {
                trace: read_csv_dir(dir, *horizon_days)?,
                next: 0,
            },
            TraceSource::InMemory(trace) => Inner::Borrowed { trace, next: 0 },
        };
        Ok(TraceReader { inner })
    }
}

fn read_csv_dir(dir: &Path, horizon_days: u32) -> Result<FleetTrace, TraceReadError> {
    let reports_path = dir.join("reports.csv");
    let swaps_path = dir.join("swaps.csv");
    let reports = File::open(&reports_path).map_err(|e| io_err(&reports_path, e))?;
    let swaps = File::open(&swaps_path).map_err(|e| io_err(&swaps_path, e))?;
    Ok(read_trace_csv(
        BufReader::new(reports),
        BufReader::new(swaps),
        horizon_days,
    )?)
}

#[derive(Debug)]
enum Inner<'a> {
    Stream(TraceDecoder<BufReader<File>>),
    Resident { trace: FleetTrace, next: usize },
    Borrowed { trace: &'a FleetTrace, next: usize },
}

/// Per-drive pull reader over an opened [`TraceSource`].
///
/// [`next_drive_into`](TraceReader::next_drive_into) fills one
/// caller-owned [`DriveLog`] per drive, reusing its buffers, so a fold
/// over a streamed archive holds exactly one drive resident at a time.
#[derive(Debug)]
pub struct TraceReader<'a> {
    inner: Inner<'a>,
}

impl TraceReader<'_> {
    /// Observation-window length declared by the source.
    pub fn horizon_days(&self) -> u32 {
        match &self.inner {
            Inner::Stream(dec) => dec.horizon_days(),
            Inner::Resident { trace, .. } => trace.horizon_days,
            Inner::Borrowed { trace, .. } => trace.horizon_days,
        }
    }

    /// Number of drives the source declares. Test-only introspection.
    #[cfg(test)]
    pub fn declared_drives(&self) -> u64 {
        match &self.inner {
            Inner::Stream(dec) => dec.n_drives(),
            Inner::Resident { trace, .. } => trace.drives.len() as u64,
            Inner::Borrowed { trace, .. } => trace.drives.len() as u64,
        }
    }

    /// True when drives are being decoded incrementally (binary archive)
    /// rather than served from a resident trace. Test-only introspection.
    #[cfg(test)]
    pub fn is_streaming(&self) -> bool {
        matches!(self.inner, Inner::Stream(_))
    }

    /// Reads the next drive into `log`, reusing its buffers. Returns
    /// `Ok(false)` at the end of the trace.
    pub fn next_drive_into(&mut self, log: &mut DriveLog) -> Result<bool, TraceReadError> {
        match &mut self.inner {
            Inner::Stream(dec) => Ok(dec.next_drive_into(log)?),
            Inner::Resident { trace, next } => {
                if let Some(d) = trace.drives.get(*next) {
                    log.clone_from(d);
                    *next += 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
            Inner::Borrowed { trace, next } => {
                if let Some(d) = trace.drives.get(*next) {
                    log.clone_from(d);
                    *next += 1;
                    Ok(true)
                } else {
                    Ok(false)
                }
            }
        }
    }

    /// Folds `f` over every remaining drive with one reused scratch
    /// [`DriveLog`].
    pub fn for_each_drive(
        &mut self,
        mut f: impl FnMut(&DriveLog),
    ) -> Result<(), TraceReadError> {
        let mut scratch = DriveLog::new(DriveId(0), DriveModel::from_index(0));
        while self.next_drive_into(&mut scratch)? {
            f(&scratch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::encode_trace;
    use crate::{DailyReport, SwapEvent};

    fn sample_trace() -> FleetTrace {
        let mut t = FleetTrace::new(365);
        for i in 0..4u32 {
            let mut d = DriveLog::new(DriveId(i), DriveModel::from_index((i % 3) as usize));
            for day in 0..3u32 {
                let mut r = DailyReport::empty(day);
                r.read_ops = u64::from(i) * 10 + u64::from(day);
                r.write_ops = u64::from(day) * 2;
                d.reports.push(r);
            }
            if i == 2 {
                d.swaps.push(SwapEvent {
                    swap_day: 1,
                    reentry_day: Some(2),
                });
            }
            t.drives.push(d);
        }
        t
    }

    fn drain(reader: &mut TraceReader<'_>) -> Vec<DriveLog> {
        let mut out = Vec::new();
        reader.for_each_drive(|d| out.push(d.clone())).unwrap();
        out
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ssd-source-{tag}-{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn archive_source_streams_all_drives() {
        let t = sample_trace();
        let dir = temp_dir("bin");
        let path = dir.join("trace.ssdfs");
        std::fs::write(&path, encode_trace(&t)).unwrap();

        let source = TraceSource::from_path(&path, None).unwrap();
        assert!(matches!(source, TraceSource::Archive(_)));
        let mut reader = source.open().unwrap();
        assert!(reader.is_streaming());
        assert_eq!(reader.horizon_days(), t.horizon_days);
        assert_eq!(reader.declared_drives(), t.drives.len() as u64);
        assert_eq!(drain(&mut reader), t.drives);
        assert_eq!(source.load().unwrap(), t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_source_round_trips() {
        let t = sample_trace();
        let dir = temp_dir("json");
        let path = dir.join("trace.json");
        std::fs::write(&path, crate::codec::trace_to_json(&t).unwrap()).unwrap();

        let source = TraceSource::from_path(&path, None).unwrap();
        assert!(matches!(source, TraceSource::Json(_)));
        let mut reader = source.open().unwrap();
        assert!(!reader.is_streaming());
        assert_eq!(drain(&mut reader), t.drives);
        assert_eq!(source.load().unwrap(), t);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_dir_requires_horizon_and_loads_with_it() {
        let t = sample_trace();
        let dir = temp_dir("csv");
        let mut reports = Vec::new();
        let mut swaps = Vec::new();
        crate::csv::write_reports_csv(&t, &mut reports).unwrap();
        crate::csv::write_swaps_csv(&t, &mut swaps).unwrap();
        std::fs::write(dir.join("reports.csv"), reports).unwrap();
        std::fs::write(dir.join("swaps.csv"), swaps).unwrap();

        let err = TraceSource::from_path(&dir, None).unwrap_err();
        assert!(matches!(err, TraceReadError::MissingHorizon));

        let source = TraceSource::from_path(&dir, Some(t.horizon_days)).unwrap();
        let mut reader = source.open().unwrap();
        assert_eq!(reader.horizon_days(), t.horizon_days);
        assert_eq!(drain(&mut reader), t.drives);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn in_memory_source_borrows_without_copying_the_trace() {
        let t = sample_trace();
        let source = TraceSource::InMemory(t.clone());
        let mut reader = source.open().unwrap();
        assert!(!reader.is_streaming());
        assert_eq!(reader.declared_drives(), 4);
        assert_eq!(drain(&mut reader), t.drives);
    }

    #[test]
    fn missing_file_reports_path_in_error() {
        let source = TraceSource::from_path("/no/such/file.ssdfs", None).unwrap();
        let err = source.open().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("/no/such/file.ssdfs"), "{msg}");
    }

    #[test]
    fn corrupt_archive_surfaces_decode_error() {
        let dir = temp_dir("corrupt");
        let path = dir.join("bad.ssdfs");
        std::fs::write(&path, b"definitely not an archive").unwrap();
        let source = TraceSource::from_path(&path, None).unwrap();
        let err = source.open().unwrap_err();
        assert!(matches!(
            err,
            TraceReadError::Decode(DecodeError::BadMagic { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_archive_errors_mid_stream_with_offset() {
        let t = sample_trace();
        let bytes = encode_trace(&t);
        let dir = temp_dir("trunc");
        let path = dir.join("cut.ssdfs");
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        let source = TraceSource::from_path(&path, None).unwrap();
        let mut reader = source.open().unwrap();
        let mut log = DriveLog::new(DriveId(0), DriveModel::from_index(0));
        let err = loop {
            match reader.next_drive_into(&mut log) {
                Ok(true) => {}
                Ok(false) => panic!("truncated archive must not drain cleanly"),
                Err(e) => break e,
            }
        };
        match err {
            TraceReadError::Decode(DecodeError::UnexpectedEof { offset }) => {
                assert_eq!(offset, (bytes.len() - 4) as u64);
            }
            other => panic!("expected truncation error, got {other}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
