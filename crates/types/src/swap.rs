//! Swap events: extraction of failed drives into the repair process.

/// A swap event (Section 3).
///
/// Swaps denote visits to the repair process — not spare-part shuffling.
/// Every swap follows a drive failure, so "each swap documented in the log
/// corresponds to a single, catastrophic failure". After repair, the drive
/// may or may not re-enter the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwapEvent {
    /// Drive age (days) at which the physical swap occurred.
    pub swap_day: u32,
    /// Drive age (days) at which the drive re-entered the field after
    /// repair, if it was ever observed to return within the trace horizon.
    pub reentry_day: Option<u32>,
}

crate::impl_json_struct!(SwapEvent { swap_day, reentry_day });

impl SwapEvent {
    /// Length of the repair process in days ("time to repair"),
    /// or `None` if the drive never returned (the paper's "∞" bar).
    pub fn repair_days(&self) -> Option<u32> {
        self.reentry_day.map(|r| r.saturating_sub(self.swap_day))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_days_is_difference() {
        let s = SwapEvent {
            swap_day: 100,
            reentry_day: Some(130),
        };
        assert_eq!(s.repair_days(), Some(30));
    }

    #[test]
    fn unrepaired_swap_has_no_repair_time() {
        let s = SwapEvent {
            swap_day: 100,
            reentry_day: None,
        };
        assert_eq!(s.repair_days(), None);
    }
}
