//! Fuzz-style tests for the JSON parser: the recursion-depth cap, random
//! well-formed documents, and random byte-level mutations of well-formed
//! documents. The parser must never panic — every input yields `Ok` or a
//! typed [`JsonError`].

use ssd_testkit::{for_each_case, Gen};
use ssd_types::json::{self, JsonError, Value, MAX_DEPTH};

/// Builds a document of exactly `depth` nested arrays around a number.
fn nested_arrays(depth: usize) -> String {
    let mut s = String::with_capacity(2 * depth + 1);
    for _ in 0..depth {
        s.push('[');
    }
    s.push('1');
    for _ in 0..depth {
        s.push(']');
    }
    s
}

/// Same, but alternating objects and arrays: `{"k":[{"k":[...]}]}`.
fn nested_mixed(depth: usize) -> String {
    let mut s = String::new();
    for i in 0..depth {
        if i % 2 == 0 {
            s.push_str("{\"k\":");
        } else {
            s.push('[');
        }
    }
    s.push_str("null");
    for i in (0..depth).rev() {
        if i % 2 == 0 {
            s.push('}');
        } else {
            s.push(']');
        }
    }
    s
}

#[test]
fn depth_cap_accepts_shallow_rejects_deep() {
    // Just under the cap parses; the cap itself is the first rejected depth.
    assert!(json::parse(&nested_arrays(MAX_DEPTH - 1)).is_ok());
    match json::parse(&nested_arrays(MAX_DEPTH)) {
        Err(JsonError::TooDeep { .. }) => {}
        other => panic!("expected TooDeep, got {other:?}"),
    }
    // Far past the cap must fail the same typed way, without overflowing
    // the real call stack.
    match json::parse(&nested_arrays(100_000)) {
        Err(JsonError::TooDeep { .. }) => {}
        other => panic!("expected TooDeep, got {other:?}"),
    }
    assert!(json::parse(&nested_mixed(MAX_DEPTH - 1)).is_ok());
    assert!(matches!(
        json::parse(&nested_mixed(MAX_DEPTH + 7)),
        Err(JsonError::TooDeep { .. })
    ));
}

#[test]
fn too_deep_reports_position() {
    let doc = nested_arrays(MAX_DEPTH + 3);
    let Err(JsonError::TooDeep { at }) = json::parse(&doc) else {
        panic!("expected TooDeep");
    };
    // The cap fires while scanning the opening brackets.
    assert!(at <= MAX_DEPTH + 3, "position {at} past the bracket run");
}

/// Generates a random well-formed JSON document (bounded depth/width).
fn arb_json(g: &mut Gen, depth: usize, out: &mut String) {
    let pick = if depth == 0 { g.usize_in(0, 5) } else { g.usize_in(0, 7) };
    match pick {
        0 => out.push_str("null"),
        1 => out.push_str(if g.bool() { "true" } else { "false" }),
        2 => {
            let n = g.u64_in(0, 1_000_000_000);
            if g.bool() {
                out.push('-');
            }
            out.push_str(&n.to_string());
            if g.bool() {
                out.push('.');
                out.push_str(&g.u64_in(0, 999).to_string());
            }
        }
        3 | 4 => {
            out.push('"');
            for _ in 0..g.usize_in(0, 8) {
                match g.usize_in(0, 5) {
                    0 => out.push_str("\\\""),
                    1 => out.push_str("\\\\"),
                    2 => out.push_str("\\u00e9"),
                    3 => out.push('é'),
                    _ => out.push((b'a' + g.u32_in(0, 26) as u8) as char),
                }
            }
            out.push('"');
        }
        5 => {
            out.push('[');
            let n = g.usize_in(0, 4);
            for i in 0..n {
                if i > 0 {
                    out.push(',');
                }
                arb_json(g, depth - 1, out);
            }
            out.push(']');
        }
        _ => {
            out.push('{');
            let n = g.usize_in(0, 4);
            for i in 0..n {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push((b'a' + i as u8) as char);
                out.push_str("\":");
                arb_json(g, depth - 1, out);
            }
            out.push('}');
        }
    }
}

#[test]
fn random_documents_round_trip() {
    for_each_case("json_random_documents", 400, |g| {
        let mut doc = String::new();
        arb_json(g, 4, &mut doc);
        let v = json::parse(&doc).unwrap_or_else(|e| panic!("{doc:?}: {e}"));
        // Render and reparse: the value survives its own serialization.
        let rendered = render(&v);
        let v2 = json::parse(&rendered).unwrap_or_else(|e| panic!("{rendered:?}: {e}"));
        assert_eq!(render(&v2), rendered, "render not a fixed point for {doc:?}");
    });
}

/// Minimal renderer over the parsed tree (string escapes kept simple: the
/// generator only emits quote, backslash, and printable characters).
fn render(v: &Value) -> String {
    match v {
        Value::Null => "null".into(),
        Value::Bool(b) => b.to_string(),
        Value::Int(n) => n.to_string(),
        Value::UInt(n) => n.to_string(),
        Value::Float(n) => format!("{n}"),
        Value::Str(s) => {
            let mut out = String::from("\"");
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        Value::Arr(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Obj(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("\"{k}\":{}", render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[test]
fn mutated_documents_never_panic() {
    for_each_case("json_mutations", 600, |g| {
        let mut doc = String::new();
        arb_json(g, 4, &mut doc);
        let mut bytes = doc.into_bytes();
        // Apply 1–4 random byte mutations: overwrite, insert, or delete.
        for _ in 0..g.usize_in(1, 5) {
            if bytes.is_empty() {
                break;
            }
            let i = g.usize_in(0, bytes.len());
            match g.usize_in(0, 3) {
                0 => bytes[i] = g.u32_in(0, 256) as u8,
                1 => bytes.insert(i, *g.choose(b"[]{}\",:truefalsenull0123456789\\ ")),
                _ => {
                    bytes.remove(i);
                }
            }
        }
        // Whatever came out — valid UTF-8 or not, valid JSON or not — the
        // parser must return, not panic.
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = json::parse(&s);
        }
    });
}
