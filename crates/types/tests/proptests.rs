//! Property-based tests: the binary codec must be lossless for *arbitrary*
//! well-formed traces, not just simulator output.

use proptest::prelude::*;
use ssd_types::codec::{decode_trace, encode_trace};
use ssd_types::{
    DailyReport, DriveId, DriveLog, DriveModel, ErrorCounts, ErrorKind, FleetTrace, SwapEvent,
};

fn arb_error_counts() -> impl Strategy<Value = ErrorCounts> {
    prop::collection::vec(0u64..1_000_000_000, ErrorKind::COUNT).prop_map(|v| {
        let mut c = ErrorCounts::zero();
        for (i, count) in v.into_iter().enumerate() {
            c.set(ErrorKind::from_index(i), count);
        }
        c
    })
}

fn arb_report() -> impl Strategy<Value = DailyReport> {
    (
        0u32..3000,
        0u64..1_000_000_000,
        0u64..1_000_000_000,
        0u64..10_000_000,
        0u32..10_000,
        any::<bool>(),
        any::<bool>(),
        0u32..50,
        0u32..100_000,
        arb_error_counts(),
    )
        .prop_map(
            |(age, r, w, e, pe, dead, ro, fbb, gbb, errors)| DailyReport {
                age_days: age,
                read_ops: r,
                write_ops: w,
                erase_ops: e,
                pe_cycles: pe,
                status_dead: dead,
                status_read_only: ro,
                factory_bad_blocks: fbb,
                grown_bad_blocks: gbb,
                errors,
            },
        )
}

fn arb_drive(id: u32) -> impl Strategy<Value = DriveLog> {
    (
        0usize..3,
        prop::collection::vec(arb_report(), 0..40),
        prop::collection::vec((0u32..4000, prop::option::of(0u32..2000)), 0..4),
    )
        .prop_map(move |(model, mut reports, swaps)| {
            // Make reports strictly increasing in age by re-assigning ages.
            reports.sort_by_key(|r| r.age_days);
            for (i, r) in reports.iter_mut().enumerate() {
                r.age_days = i as u32 * 3 + (r.age_days % 3);
            }
            reports.dedup_by_key(|r| r.age_days);
            let mut day = 0u32;
            let swaps = swaps
                .into_iter()
                .map(|(gap, rep)| {
                    day += 1 + gap % 500;
                    let swap_day = day;
                    let reentry_day = rep.map(|r| {
                        day += 1 + r % 400;
                        day
                    });
                    SwapEvent {
                        swap_day,
                        reentry_day,
                    }
                })
                .collect();
            DriveLog {
                id: DriveId(id),
                model: DriveModel::from_index(model),
                reports,
                swaps,
            }
        })
}

fn arb_trace() -> impl Strategy<Value = FleetTrace> {
    prop::collection::vec(any::<u8>(), 1..6).prop_flat_map(|ids| {
        let drives: Vec<_> = ids
            .iter()
            .enumerate()
            .map(|(i, _)| arb_drive(i as u32))
            .collect();
        (0u32..5000, drives).prop_map(|(horizon, drives)| FleetTrace {
            horizon_days: horizon,
            drives,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_codec_roundtrip(trace in arb_trace()) {
        let bytes = encode_trace(&trace);
        let back = decode_trace(bytes).expect("decode");
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn json_codec_roundtrip(trace in arb_trace()) {
        let s = ssd_types::codec::trace_to_json(&trace).unwrap();
        let back = ssd_types::codec::trace_from_json(&s).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn truncation_never_panics(trace in arb_trace(), cut in 0usize..64) {
        let bytes = encode_trace(&trace);
        let keep = bytes.len().saturating_sub(cut);
        // Either decodes (cut == 0) or errors; must never panic.
        let _ = decode_trace(bytes.slice(0..keep));
    }

    #[test]
    fn error_counts_sum_identities(c in arb_error_counts()) {
        let total = c.total();
        let nt = c.total_non_transparent();
        let t: u64 = ErrorKind::transparent().map(|k| c.get(k)).sum();
        prop_assert_eq!(total, nt + t);
        prop_assert_eq!(nt > 0, c.any_non_transparent());
    }
}
