//! Property-based tests: the binary codec must be lossless for *arbitrary*
//! well-formed traces, not just simulator output.

use ssd_testkit::{for_each_case, Gen};
use ssd_types::codec::{
    decode_trace, encode_drive_soa, encode_trace, encode_trace_to, ReportColumns, TraceDecoder,
    TraceEncoder, STATUS_DEAD, STATUS_READ_ONLY,
};
use ssd_types::csv::{read_trace_csv, write_reports_csv, write_swaps_csv};
use ssd_types::{
    DailyReport, DriveId, DriveLog, DriveModel, ErrorCounts, ErrorKind, FleetTrace, SwapEvent,
};
use std::io::BufReader;

fn arb_error_counts(g: &mut Gen) -> ErrorCounts {
    let mut c = ErrorCounts::zero();
    for i in 0..ErrorKind::COUNT {
        c.set(ErrorKind::from_index(i), g.u64_in(0, 1_000_000_000));
    }
    c
}

fn arb_report(g: &mut Gen) -> DailyReport {
    DailyReport {
        age_days: g.u32_in(0, 3000),
        read_ops: g.u64_in(0, 1_000_000_000),
        write_ops: g.u64_in(0, 1_000_000_000),
        erase_ops: g.u64_in(0, 10_000_000),
        pe_cycles: g.u32_in(0, 10_000),
        status_dead: g.bool(),
        status_read_only: g.bool(),
        factory_bad_blocks: g.u32_in(0, 50),
        grown_bad_blocks: g.u32_in(0, 100_000),
        errors: arb_error_counts(g),
    }
}

fn arb_drive(g: &mut Gen, id: u32) -> DriveLog {
    let model = g.usize_in(0, 3);
    let mut reports = g.vec(0, 39, arb_report);
    let raw_swaps: Vec<(u32, Option<u32>)> =
        g.vec(0, 3, |g| (g.u32_in(0, 4000), g.option(|g| g.u32_in(0, 2000))));
    // Make reports strictly increasing in age by re-assigning ages.
    reports.sort_by_key(|r| r.age_days);
    for (i, r) in reports.iter_mut().enumerate() {
        r.age_days = i as u32 * 3 + (r.age_days % 3);
    }
    reports.dedup_by_key(|r| r.age_days);
    let mut day = 0u32;
    let swaps = raw_swaps
        .into_iter()
        .map(|(gap, rep)| {
            day += 1 + gap % 500;
            let swap_day = day;
            let reentry_day = rep.map(|r| {
                day += 1 + r % 400;
                day
            });
            SwapEvent {
                swap_day,
                reentry_day,
            }
        })
        .collect();
    DriveLog {
        id: DriveId(id),
        model: DriveModel::from_index(model),
        reports,
        swaps,
        // Arbitrary finite log-weights (negative, zero, positive) so every
        // roundtrip exercises the v2 weight field.
        log_weight: (g.u32_in(0, 2000) as f64 - 1000.0) / 250.0,
    }
}

fn arb_trace(g: &mut Gen) -> FleetTrace {
    let n_drives = g.usize_in(1, 6);
    let drives = (0..n_drives).map(|i| arb_drive(g, i as u32)).collect();
    FleetTrace {
        horizon_days: g.u32_in(0, 5000),
        drives,
    }
}

#[test]
fn binary_codec_roundtrip() {
    for_each_case("binary_codec_roundtrip", 64, |g| {
        let trace = arb_trace(g);
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).expect("decode");
        assert_eq!(back, trace);
    });
}

#[test]
fn json_codec_roundtrip() {
    for_each_case("json_codec_roundtrip", 64, |g| {
        let trace = arb_trace(g);
        let s = ssd_types::codec::trace_to_json(&trace).unwrap();
        let back = ssd_types::codec::trace_from_json(&s).unwrap();
        assert_eq!(back, trace);
    });
}

#[test]
fn truncation_never_panics() {
    for_each_case("truncation_never_panics", 64, |g| {
        let trace = arb_trace(g);
        let cut = g.usize_in(0, 64);
        let bytes = encode_trace(&trace);
        let keep = bytes.len().saturating_sub(cut);
        // Either decodes (cut == 0) or errors; must never panic. Both the
        // resident and the streaming path must agree on success/failure.
        let resident = decode_trace(&bytes[..keep]);
        let streamed = drain_stream(&bytes[..keep]);
        assert_eq!(resident.is_ok(), streamed.is_ok());
        if let (Ok(a), Ok(b)) = (resident, streamed) {
            assert_eq!(a, b);
        }
    });
}

/// Fully consumes an archive through [`TraceDecoder`], returning the
/// decoded trace or the first typed error. Panics are the only failure
/// mode this helper cannot produce — which is the point.
fn drain_stream(bytes: &[u8]) -> Result<FleetTrace, ssd_types::codec::DecodeError> {
    let mut dec = TraceDecoder::new(bytes)?;
    let horizon_days = dec.horizon_days();
    let mut drives = Vec::new();
    for d in &mut dec {
        drives.push(d?);
    }
    Ok(FleetTrace {
        horizon_days,
        drives,
    })
}

#[test]
fn mutation_never_panics_and_yields_typed_errors() {
    for_each_case("mutation_never_panics", 128, |g| {
        let trace = arb_trace(g);
        let mut bytes = encode_trace(&trace);
        for _ in 0..g.usize_in(1, 4) {
            let i = g.usize_in(0, bytes.len() - 1);
            bytes[i] ^= g.u32_in(1, 255) as u8;
        }
        // A mutated archive may still decode (the flip landed in a value),
        // but it must never panic, and both paths must agree.
        let resident = decode_trace(&bytes);
        let streamed = drain_stream(&bytes);
        assert_eq!(resident.is_ok(), streamed.is_ok());
        // The columnar streaming path must be equally hardened.
        if let Ok(mut dec) = TraceDecoder::new(bytes.as_slice()) {
            loop {
                match dec.next_drive_columns() {
                    Ok(Some(_)) => {}
                    Ok(None) | Err(_) => break,
                }
            }
        }
        // Drives that *do* decode from the damaged archive then hit the
        // invariant gate online consumers apply (`build_dataset_streaming`
        // maps it to TraceReadError::Invalid): validate() must return its
        // typed Err for nonsense telemetry, never panic on it.
        if let Ok(mut dec) = TraceDecoder::new(bytes.as_slice()) {
            let mut log = DriveLog::new(DriveId(0), DriveModel::from_index(0));
            while let Ok(true) = dec.next_drive_into(&mut log) {
                let _ = log.validate();
            }
        }
    });
}

#[test]
fn stream_roundtrip_matches_resident_at_chunk_sizes() {
    for_each_case("stream_roundtrip_chunks", 32, |g| {
        let trace = arb_trace(g);
        let resident = encode_trace(&trace);
        let mut streamed = Vec::new();
        encode_trace_to(&trace, &mut streamed).expect("stream encode");
        assert_eq!(streamed, resident, "stream-encode must be byte-identical");

        let n = trace.drives.len();
        for chunk in [1usize, 7, 128, n] {
            let mut dec = TraceDecoder::new(streamed.as_slice()).expect("header");
            assert_eq!(dec.horizon_days(), trace.horizon_days);
            let mut scratch = Vec::new();
            let mut all: Vec<DriveLog> = Vec::new();
            loop {
                let got = dec.read_chunk_into(chunk, &mut scratch).expect("chunk");
                if got == 0 {
                    break;
                }
                all.extend(scratch.iter().cloned());
            }
            assert_eq!(
                all, trace.drives,
                "chunked stream decode (chunk {chunk}) must equal resident"
            );
        }
    });
}

/// Like [`arb_trace`], but constrained to traces that satisfy
/// `FleetTrace::validate` (the CSV reader validates on load): cumulative
/// counters are made non-decreasing by taking running maxima.
fn arb_valid_trace(g: &mut Gen) -> FleetTrace {
    let mut trace = arb_trace(g);
    for d in &mut trace.drives {
        // The CSV interchange format has no weight column; keep the
        // roundtrip comparison meaningful.
        d.log_weight = 0.0;
        let mut pe = 0u32;
        let mut fbb = 0u32;
        let mut gbb = 0u32;
        for r in &mut d.reports {
            pe = pe.max(r.pe_cycles);
            fbb = fbb.max(r.factory_bad_blocks);
            gbb = gbb.max(r.grown_bad_blocks);
            r.pe_cycles = pe;
            r.factory_bad_blocks = fbb;
            r.grown_bad_blocks = gbb;
        }
    }
    trace
}

#[test]
fn csv_codec_roundtrip() {
    for_each_case("csv_codec_roundtrip", 64, |g| {
        let trace = arb_valid_trace(g);
        let mut reports = Vec::new();
        let mut swaps = Vec::new();
        write_reports_csv(&trace, &mut reports).expect("write reports");
        write_swaps_csv(&trace, &mut swaps).expect("write swaps");
        let back = read_trace_csv(
            BufReader::new(reports.as_slice()),
            BufReader::new(swaps.as_slice()),
            trace.horizon_days,
        )
        .expect("read");
        // Documented CSV limitation: drives with no reports and no swaps
        // have no rows and cannot be recovered.
        let expected: Vec<DriveLog> = trace
            .drives
            .iter()
            .filter(|d| !d.reports.is_empty() || !d.swaps.is_empty())
            .cloned()
            .collect();
        assert_eq!(back.horizon_days, trace.horizon_days);
        assert_eq!(back.drives, expected);
    });
}

/// Owned columns mirroring a drive's reports, lent out as [`ReportColumns`].
struct OwnedColumns {
    age_days: Vec<u32>,
    read_ops: Vec<u64>,
    write_ops: Vec<u64>,
    erase_ops: Vec<u64>,
    pe_cycles: Vec<u32>,
    status_flags: Vec<u8>,
    factory_bad_blocks: Vec<u32>,
    grown_bad_blocks: Vec<u32>,
    errors: [Vec<u64>; ErrorKind::COUNT],
}

impl OwnedColumns {
    fn from_reports(reports: &[DailyReport]) -> Self {
        let mut c = OwnedColumns {
            age_days: Vec::new(),
            read_ops: Vec::new(),
            write_ops: Vec::new(),
            erase_ops: Vec::new(),
            pe_cycles: Vec::new(),
            status_flags: Vec::new(),
            factory_bad_blocks: Vec::new(),
            grown_bad_blocks: Vec::new(),
            errors: std::array::from_fn(|_| Vec::new()),
        };
        for r in reports {
            c.age_days.push(r.age_days);
            c.read_ops.push(r.read_ops);
            c.write_ops.push(r.write_ops);
            c.erase_ops.push(r.erase_ops);
            c.pe_cycles.push(r.pe_cycles);
            c.status_flags.push(
                u8::from(r.status_dead) * STATUS_DEAD
                    | u8::from(r.status_read_only) * STATUS_READ_ONLY,
            );
            c.factory_bad_blocks.push(r.factory_bad_blocks);
            c.grown_bad_blocks.push(r.grown_bad_blocks);
            for (i, (_, count)) in r.errors.iter().enumerate() {
                c.errors[i].push(count);
            }
        }
        c
    }

    fn view(&self) -> ReportColumns<'_> {
        ReportColumns {
            age_days: &self.age_days,
            read_ops: &self.read_ops,
            write_ops: &self.write_ops,
            erase_ops: &self.erase_ops,
            pe_cycles: &self.pe_cycles,
            status_flags: &self.status_flags,
            factory_bad_blocks: &self.factory_bad_blocks,
            grown_bad_blocks: &self.grown_bad_blocks,
            errors: std::array::from_fn(|i| self.errors[i].as_slice()),
        }
    }
}

#[test]
fn soa_encoding_matches_aos_for_arbitrary_traces() {
    for_each_case("soa_encoding_matches_aos", 64, |g| {
        let trace = arb_trace(g);
        let expected = encode_trace(&trace);
        let mut enc =
            TraceEncoder::new(trace.horizon_days, trace.drives.len() as u64);
        for d in &trace.drives {
            let cols = OwnedColumns::from_reports(&d.reports);
            enc.append_columns(d.id, d.model, d.log_weight, cols.view(), &d.swaps)
                .expect("Vec sink cannot fail");
        }
        let soa = enc.finish();
        assert_eq!(soa, expected);
        // And the SoA-built archive decodes back to the original trace.
        assert_eq!(decode_trace(&soa).expect("decode"), trace);
    });
}

#[test]
fn per_drive_soa_encoding_is_self_consistent() {
    for_each_case("per_drive_soa_encoding", 64, |g| {
        let id = g.u32_in(0, 1000);
        let d = arb_drive(g, id);
        let cols = OwnedColumns::from_reports(&d.reports);
        let mut soa = Vec::new();
        encode_drive_soa(&mut soa, d.id, d.model, d.log_weight, cols.view(), &d.swaps);
        let mut enc = TraceEncoder::new(100, 1);
        enc.append_drive(&d).expect("Vec sink cannot fail");
        let via_log = enc.finish();
        // Skip the archive header; the drive record bytes must agree.
        assert_eq!(&via_log[via_log.len() - soa.len()..], soa.as_slice());
    });
}

#[test]
fn error_counts_sum_identities() {
    for_each_case("error_counts_sum_identities", 64, |g| {
        let c = arb_error_counts(g);
        let total = c.total();
        let nt = c.total_non_transparent();
        let t: u64 = ErrorKind::transparent().map(|k| c.get(k)).sum();
        assert_eq!(total, nt + t);
        assert_eq!(nt > 0, c.any_non_transparent());
    });
}
