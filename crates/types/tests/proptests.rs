//! Property-based tests: the binary codec must be lossless for *arbitrary*
//! well-formed traces, not just simulator output.

use ssd_testkit::{for_each_case, Gen};
use ssd_types::codec::{decode_trace, encode_trace};
use ssd_types::{
    DailyReport, DriveId, DriveLog, DriveModel, ErrorCounts, ErrorKind, FleetTrace, SwapEvent,
};

fn arb_error_counts(g: &mut Gen) -> ErrorCounts {
    let mut c = ErrorCounts::zero();
    for i in 0..ErrorKind::COUNT {
        c.set(ErrorKind::from_index(i), g.u64_in(0, 1_000_000_000));
    }
    c
}

fn arb_report(g: &mut Gen) -> DailyReport {
    DailyReport {
        age_days: g.u32_in(0, 3000),
        read_ops: g.u64_in(0, 1_000_000_000),
        write_ops: g.u64_in(0, 1_000_000_000),
        erase_ops: g.u64_in(0, 10_000_000),
        pe_cycles: g.u32_in(0, 10_000),
        status_dead: g.bool(),
        status_read_only: g.bool(),
        factory_bad_blocks: g.u32_in(0, 50),
        grown_bad_blocks: g.u32_in(0, 100_000),
        errors: arb_error_counts(g),
    }
}

fn arb_drive(g: &mut Gen, id: u32) -> DriveLog {
    let model = g.usize_in(0, 3);
    let mut reports = g.vec(0, 39, arb_report);
    let raw_swaps: Vec<(u32, Option<u32>)> =
        g.vec(0, 3, |g| (g.u32_in(0, 4000), g.option(|g| g.u32_in(0, 2000))));
    // Make reports strictly increasing in age by re-assigning ages.
    reports.sort_by_key(|r| r.age_days);
    for (i, r) in reports.iter_mut().enumerate() {
        r.age_days = i as u32 * 3 + (r.age_days % 3);
    }
    reports.dedup_by_key(|r| r.age_days);
    let mut day = 0u32;
    let swaps = raw_swaps
        .into_iter()
        .map(|(gap, rep)| {
            day += 1 + gap % 500;
            let swap_day = day;
            let reentry_day = rep.map(|r| {
                day += 1 + r % 400;
                day
            });
            SwapEvent {
                swap_day,
                reentry_day,
            }
        })
        .collect();
    DriveLog {
        id: DriveId(id),
        model: DriveModel::from_index(model),
        reports,
        swaps,
    }
}

fn arb_trace(g: &mut Gen) -> FleetTrace {
    let n_drives = g.usize_in(1, 6);
    let drives = (0..n_drives).map(|i| arb_drive(g, i as u32)).collect();
    FleetTrace {
        horizon_days: g.u32_in(0, 5000),
        drives,
    }
}

#[test]
fn binary_codec_roundtrip() {
    for_each_case("binary_codec_roundtrip", 64, |g| {
        let trace = arb_trace(g);
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).expect("decode");
        assert_eq!(back, trace);
    });
}

#[test]
fn json_codec_roundtrip() {
    for_each_case("json_codec_roundtrip", 64, |g| {
        let trace = arb_trace(g);
        let s = ssd_types::codec::trace_to_json(&trace).unwrap();
        let back = ssd_types::codec::trace_from_json(&s).unwrap();
        assert_eq!(back, trace);
    });
}

#[test]
fn truncation_never_panics() {
    for_each_case("truncation_never_panics", 64, |g| {
        let trace = arb_trace(g);
        let cut = g.usize_in(0, 64);
        let bytes = encode_trace(&trace);
        let keep = bytes.len().saturating_sub(cut);
        // Either decodes (cut == 0) or errors; must never panic.
        let _ = decode_trace(&bytes[..keep]);
    });
}

#[test]
fn error_counts_sum_identities() {
    for_each_case("error_counts_sum_identities", 64, |g| {
        let c = arb_error_counts(g);
        let total = c.total();
        let nt = c.total_non_transparent();
        let t: u64 = ErrorKind::transparent().map(|k| c.get(k)).sum();
        assert_eq!(total, nt + t);
        assert_eq!(nt > 0, c.any_non_transparent());
    });
}
