//! Operating a failure predictor: choose a deployment threshold, inspect
//! the alerts it would raise, and compare the six model families.
//!
//! The paper's use case (Section 5): "if we are able to detect future
//! failures far enough in advance with sufficient certainty, we have the
//! option to take preventative action". Production deployments need a low
//! false-positive rate, so we pick the operating point from the ROC curve.
//!
//! ```sh
//! cargo run --release --example failure_prediction
//! ```

use ssd_field_study::core::{build_dataset, ExtractOptions};
use ssd_field_study::ml::{
    cross_validate, downsample_majority, grouped_kfold, Confusion, CvOptions, ForestConfig,
    GbdtConfig, KnnConfig, LinearSvmConfig, LogisticRegressionConfig, MlpConfig,
    NaiveBayesConfig, RocCurve, Trainer, TreeConfig,
};
use ssd_field_study::sim::{FleetGen, SimConfig};

fn main() {
    let trace = FleetGen::new(&SimConfig {
        drives_per_model: 700,
        horizon_days: 6 * 365,
        seed: 9,
        ..SimConfig::default()
    })
    .trace();
    let data = build_dataset(
        &trace,
        &ExtractOptions {
            lookahead_days: 3, // three days of warning to migrate data
            negative_sample_rate: 0.05,
            ..Default::default()
        },
    );
    let (pos, neg) = data.class_counts();
    println!("dataset: {pos} failure-imminent days, {neg} healthy days\n");

    // -- Compare the six model families (Table 6's protocol) --------------
    let cv = CvOptions {
        k: 5,
        downsample_ratio: 1.0,
        seed: 9,
    };
    // The paper's six families plus two extended baselines: naive Bayes
    // (the related-work Bayesian approach) and gradient boosting (the
    // natural "improve prediction for large N" follow-up).
    let trainers: Vec<Box<dyn Trainer>> = vec![
        Box::new(LogisticRegressionConfig::default()),
        Box::new(KnnConfig::default()),
        Box::new(LinearSvmConfig::default()),
        Box::new(MlpConfig::default()),
        Box::new(TreeConfig::default()),
        Box::new(ForestConfig::default()),
        Box::new(NaiveBayesConfig::default()),
        Box::new(GbdtConfig::default()),
    ];
    println!("cross-validated ROC AUC (N = 3 days):");
    for t in &trainers {
        let r = cross_validate(t.as_ref(), &data, &cv);
        println!("  {:<16} {}", t.name(), r.display());
    }

    // -- Pick an operating point on a held-out fold -----------------------
    let folds = grouped_kfold(&data, 5, 9);
    let in_test: std::collections::HashSet<usize> = folds[0].iter().copied().collect();
    let train_idx: Vec<usize> = (0..data.n_rows()).filter(|i| !in_test.contains(i)).collect();
    let train_idx = downsample_majority(&data, &train_idx, 1.0, 9);
    let model = ForestConfig::default().fit(&data.select(&train_idx), 9);
    let test = data.select(&folds[0]);
    let scores = model.predict_batch(&test);
    let curve = RocCurve::compute(&scores, test.labels());
    println!("\nheld-out AUC: {:.3}", curve.auc());

    println!("\noperating points (score >= threshold raises an alert):");
    println!(
        "  {:>9}  {:>6}  {:>8}  {:>9}  {:>11}",
        "threshold", "recall", "FPR", "precision", "alerts/10k"
    );
    for max_fpr in [0.001, 0.01, 0.05] {
        // Largest threshold whose FPR stays within budget.
        let point = curve
            .points
            .iter()
            .take_while(|p| p.fpr <= max_fpr)
            .last()
            .expect("curve starts at fpr 0");
        let c = Confusion::at_threshold(&scores, test.labels(), point.threshold);
        println!(
            "  {:>9.3}  {:>5.1}%  {:>7.2}%  {:>8.1}%  {:>11.1}",
            point.threshold,
            c.tpr() * 100.0,
            c.fpr() * 100.0,
            c.precision() * 100.0,
            (c.tp + c.fp) as f64 / test.n_rows() as f64 * 10_000.0
        );
    }
    println!(
        "\nAt a strict FPR budget the model still catches a sizable share of\n\
         failures days in advance - enough to migrate data off sick drives."
    );
}
