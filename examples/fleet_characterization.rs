//! Fleet characterization: the operations-planning view of Sections 3–4.
//!
//! A data-center operator wants to know: how often do drives fail, how
//! long do failed drives linger before swap, how slow is the repair loop,
//! and is infant mortality worth a separate burn-in policy? This example
//! answers each question from a simulated fleet.
//!
//! ```sh
//! cargo run --release --example fleet_characterization
//! ```

use ssd_field_study::core::{aging, characterize, errors_analysis, lifecycle};
use ssd_field_study::sim::{FleetGen, SimConfig};

fn main() {
    let trace = FleetGen::new(&SimConfig {
        drives_per_model: 800,
        horizon_days: 6 * 365,
        seed: 1,
        ..SimConfig::default()
    })
    .trace();
    println!(
        "== fleet: {} drives / {} drive-days ==\n",
        trace.n_drives(),
        trace.total_drive_days()
    );

    // How often do drives fail? (Table 3 / Table 4)
    println!("{}", lifecycle::failure_incidence(&trace).table());
    println!("{}", lifecycle::failure_count_distribution(&trace).table());

    // How long do failed drives linger, and does repair ever finish?
    // (Figures 4 and 5)
    let nop = lifecycle::non_operational_ecdf(&trace);
    println!("failed drives swapped within 1 day:  {:>5.1}%", nop.eval(1.0) * 100.0);
    println!("failed drives swapped within 7 days: {:>5.1}%", nop.eval(7.0) * 100.0);
    println!(
        "failed drives lingering 100+ days:   {:>5.1}%",
        (1.0 - nop.eval(100.0)) * 100.0
    );
    let rep = lifecycle::time_to_repair_ecdf(&trace);
    println!(
        "swapped drives never observed back:  {:>5.1}%\n",
        rep.censored_fraction() * 100.0
    );

    // Is there infant mortality, and is it burn-in stress? (Figures 6–7)
    let fa = aging::failure_age(&trace);
    println!(
        "failures in first 30 days: {:.1}%   first 90 days: {:.1}%",
        fa.frac_under_30d * 100.0,
        fa.frac_under_90d * 100.0
    );
    let wi = aging::write_intensity(&trace);
    let median = |m: u32| {
        wi.quartiles_by_month
            .iter()
            .find(|&&(month, ..)| month == m)
            .map(|&(_, _, q2, _)| q2)
            .unwrap_or(f64::NAN)
    };
    println!(
        "median daily writes, month 1 vs month 12: {:.2e} vs {:.2e}",
        median(1),
        median(12)
    );
    println!("(young drives write LESS - infant mortality is not burn-in stress)\n");

    // Does wear predict failure? (Figure 8, Table 2)
    let wear = aging::wear_at_failure(&trace);
    println!(
        "failures below 1500 P/E cycles (limit 3000): {:.1}%",
        wear.frac_under_1500 * 100.0
    );
    let corr = characterize::correlation_matrix(&trace);
    println!(
        "Spearman P/E <-> uncorrectable errors: {:+.2} (wear is a poor failure signal)",
        corr.get("P/E cycle", "uncorrectable")
    );
    println!(
        "Spearman uncorrectable <-> final read: {:+.2} (same underlying events)\n",
        corr.get("uncorrectable", "final read")
    );

    // Do failures announce themselves? (Figures 10–11)
    let cdfs = errors_analysis::cumulative_error_cdfs(&trace);
    println!(
        "drives with zero uncorrectable errors - never-failed: {:.0}%, failed old: {:.0}%, failed young: {:.0}%",
        cdfs.zero_ue_fracs[2] * 100.0,
        cdfs.zero_ue_fracs[1] * 100.0,
        cdfs.zero_ue_fracs[0] * 100.0
    );
    println!(
        "failures with no symptoms at all: {:.0}% - monitoring alone cannot catch everything",
        cdfs.symptomless_failure_frac * 100.0
    );
}
