//! Auditing the paper's 13 observations against a fleet.
//!
//! The paper condenses its findings into numbered Observations. This
//! example re-checks every one of them automatically — the tool a site
//! would run against its *own* field data to see which of the paper's
//! conclusions transfer to its fleet.
//!
//! ```sh
//! cargo run --release --example observation_audit
//! ```

use ssd_field_study::core::observations::{
    audit_model_observations, audit_trace_observations, render_checks,
};
use ssd_field_study::core::PredictConfig;
use ssd_field_study::sim::{FleetGen, SimConfig};

fn main() {
    let trace = FleetGen::new(&SimConfig {
        drives_per_model: 700,
        horizon_days: 6 * 365,
        seed: 13,
        ..SimConfig::default()
    })
    .trace();
    println!(
        "auditing {} drives / {} drive-days against the paper's observations...\n",
        trace.n_drives(),
        trace.total_drive_days()
    );

    // Observations 1–11: pure trace statistics.
    let mut checks = audit_trace_observations(&trace);

    // Observations 12–13 need trained models (takes a little longer).
    checks.extend(audit_model_observations(&trace, &PredictConfig::fast(13)));

    println!("{}", render_checks(&checks));

    let holding = checks.iter().filter(|c| c.holds).count();
    println!("{holding}/{} observations hold on this fleet", checks.len());
    if holding < checks.len() {
        println!("(a real fleet diverging here is exactly the interesting signal)");
        std::process::exit(1);
    }
}
