//! Proactive-replacement policy simulation — the paper's motivating
//! application, built end to end.
//!
//! "Being able to predict an upcoming retirement could allow early action:
//! for example, early replacement before failure happens, migration of
//! data and VMs to other resources" (Section 1). This example quantifies
//! that: a predictor watches each drive day by day; when the failure
//! probability crosses a threshold, the operator proactively migrates the
//! drive's data (cheap, planned). Failures that strike without an alert
//! cause an emergency recovery (expensive, unplanned). False alerts waste
//! a migration.
//!
//! ```sh
//! cargo run --release --example proactive_policy
//! ```

use ssd_field_study::core::{build_dataset, failure_records, ExtractOptions, PolicyOutcome};
use ssd_field_study::ml::{downsample_majority, ForestConfig, Trainer};
use ssd_field_study::sim::{FleetGen, SimConfig};
use std::collections::HashSet;

/// Relative costs (in arbitrary ops-budget units).
const COST_EMERGENCY: f64 = 100.0; // unplanned failure: data rebuild, downtime
const COST_PLANNED: f64 = 12.0; // proactive migration before failure
const COST_FALSE_ALERT: f64 = 12.0; // migration that wasn't needed

fn main() {
    // Train on one fleet, deploy on another (no shared drives).
    let train_trace = FleetGen::new(&SimConfig {
        drives_per_model: 600,
        horizon_days: 6 * 365,
        seed: 100,
        ..SimConfig::default()
    })
    .trace();
    let deploy_trace = FleetGen::new(&SimConfig {
        drives_per_model: 600,
        horizon_days: 6 * 365,
        seed: 200,
        ..SimConfig::default()
    })
    .trace();

    let opts = ExtractOptions {
        lookahead_days: 3,
        negative_sample_rate: 0.05,
        ..Default::default()
    };
    let train_data = build_dataset(&train_trace, &opts);
    let all: Vec<usize> = (0..train_data.n_rows()).collect();
    let idx = downsample_majority(&train_data, &all, 1.0, 0);
    let model = ForestConfig::default().fit(&train_data.select(&idx), 0);
    println!("predictor trained on {} balanced rows", idx.len());

    // Deployment: score EVERY reported day of the deployment fleet
    // (negative_sample_rate = 1 so no day is skipped).
    let deploy_opts = ExtractOptions {
        lookahead_days: 3,
        negative_sample_rate: 1.0,
        ..Default::default()
    };
    let deploy_data = build_dataset(&deploy_trace, &deploy_opts);
    let scores = model.predict_batch(&deploy_data);

    println!(
        "deployment fleet: {} drives, {} scored days\n",
        deploy_trace.n_drives(),
        deploy_data.n_rows()
    );
    println!(
        "{:>9} | {:>8} {:>8} {:>8} | {:>12} {:>12} {:>8}",
        "threshold", "caught", "missed", "false", "policy cost", "reactive", "saving"
    );

    let n_failures: usize = deploy_trace
        .drives
        .iter()
        .map(|d| failure_records(d).len())
        .sum();
    let reactive_cost = n_failures as f64 * COST_EMERGENCY;

    for threshold in [0.5, 0.7, 0.9, 0.97] {
        // A drive is "migrated" at its first alert; later alerts are free.
        // A failure is caught if an alert fired at most 3 days before it.
        let mut alerted_drives: HashSet<u32> = HashSet::new();
        let mut alert_day: Vec<(u32, f32)> = Vec::new(); // (drive, age at first alert)
        for i in 0..deploy_data.n_rows() {
            if scores[i] >= threshold {
                let drive = deploy_data.group(i);
                if alerted_drives.insert(drive) {
                    let age = deploy_data.row(i)[29]; // "drive age" column
                    alert_day.push((drive, age));
                }
            }
        }
        let alert_of: std::collections::HashMap<u32, f32> =
            alert_day.iter().copied().collect();

        let mut caught = 0usize;
        let mut missed = 0usize;
        for d in &deploy_trace.drives {
            for f in failure_records(d) {
                match alert_of.get(&d.id.0) {
                    // Alert at or before the failure: planned migration.
                    Some(&age) if age <= f.fail_day as f32 => caught += 1,
                    _ => missed += 1,
                }
            }
        }
        let failed_drives: HashSet<u32> = deploy_trace
            .drives
            .iter()
            .filter(|d| d.ever_failed())
            .map(|d| d.id.0)
            .collect();
        let false_alerts = alerted_drives
            .iter()
            .filter(|d| !failed_drives.contains(d))
            .count();

        let outcome = PolicyOutcome {
            threshold,
            caught,
            missed,
            false_alerts,
            policy_cost: caught as f64 * COST_PLANNED
                + missed as f64 * COST_EMERGENCY
                + false_alerts as f64 * COST_FALSE_ALERT,
            reactive_cost,
        };
        println!(
            "{:>9.2} | {:>8} {:>8} {:>8} | {:>12.0} {:>12.0} {:>7.1}%",
            outcome.threshold,
            outcome.caught,
            outcome.missed,
            outcome.false_alerts,
            outcome.policy_cost,
            outcome.reactive_cost,
            outcome.saving() * 100.0
        );
    }
    println!(
        "\nEven a conservative threshold converts a chunk of emergency recoveries\n\
         into planned migrations; the optimum balances catch rate against\n\
         false-alert volume exactly as the ROC analysis suggests."
    );
}
