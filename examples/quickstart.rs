//! Quickstart: simulate a small SSD fleet, inspect it, and train a failure
//! predictor — the whole pipeline in ~50 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ssd_field_study::core::{build_dataset, ExtractOptions};
use ssd_field_study::ml::{cross_validate, CvOptions, ForestConfig};
use ssd_field_study::sim::{FleetGen, SimConfig};

fn main() {
    // 1. Simulate a fleet: 300 drives of each MLC model over six years.
    let trace = FleetGen::new(&SimConfig {
        drives_per_model: 300,
        horizon_days: 6 * 365,
        seed: 42,
        ..SimConfig::default()
    })
    .trace();
    println!(
        "fleet: {} drives, {} drive-days, {} swap events",
        trace.n_drives(),
        trace.total_drive_days(),
        trace.total_swaps()
    );

    // 2. Turn the raw logs into a supervised dataset: one row per reported
    //    drive-day, labeled "does a swap-inducing failure occur within the
    //    next day?".
    let data = build_dataset(
        &trace,
        &ExtractOptions {
            lookahead_days: 1,
            negative_sample_rate: 0.05, // all positives, 5% of negatives
            ..Default::default()
        },
    );
    let (pos, neg) = data.class_counts();
    println!("dataset: {} rows ({pos} failure days, {neg} healthy days)", data.n_rows());

    // 3. Cross-validate a random forest with the paper's protocol: 5 folds
    //    grouped by drive ID, training folds downsampled to 1:1.
    let result = cross_validate(
        &ForestConfig::default(),
        &data,
        &CvOptions {
            k: 5,
            downsample_ratio: 1.0,
            seed: 42,
        },
    );
    println!("random forest ROC AUC (N=1): {}", result.display());
    println!("(the paper reports 0.905 ± 0.008 on the full 30k-drive trace)");
}
