//! Archiving and exchanging traces: binary codec vs JSON, with integrity
//! checks — how a site would persist its own field data in this tool's
//! schema and re-run every analysis on it later.
//!
//! ```sh
//! cargo run --release --example trace_archive
//! ```

use ssd_field_study::sim::{FleetGen, SimConfig};
use ssd_field_study::types::codec;

fn main() {
    let trace = FleetGen::new(&SimConfig {
        drives_per_model: 150,
        horizon_days: 3 * 365,
        seed: 5,
        ..SimConfig::default()
    })
    .trace();
    println!(
        "trace: {} drives, {} drive-days",
        trace.n_drives(),
        trace.total_drive_days()
    );

    // Compact binary archive.
    let bin = codec::encode_trace(&trace);
    println!("binary archive: {:.2} MiB", bin.len() as f64 / (1024.0 * 1024.0));
    println!(
        "  {:.1} bytes per drive-day",
        bin.len() as f64 / trace.total_drive_days() as f64
    );

    // JSON for interchange with other tooling.
    let json = codec::trace_to_json(&trace).expect("serialize");
    println!("json export:    {:.2} MiB", json.len() as f64 / (1024.0 * 1024.0));
    println!(
        "  binary is {:.1}x smaller",
        json.len() as f64 / bin.len() as f64
    );

    // Round-trip integrity: both codecs must reproduce the trace exactly.
    let from_bin = codec::decode_trace(&bin).expect("decode binary");
    assert_eq!(from_bin, trace, "binary round trip must be lossless");
    let from_json = codec::trace_from_json(&json).expect("decode json");
    assert_eq!(from_json, trace, "json round trip must be lossless");
    from_bin.validate().expect("invariants hold after decode");
    println!("round-trip integrity: OK (binary + json, all invariants hold)");

    // A site ingesting real field data writes DailyReport/SwapEvent rows
    // into this schema; every analysis in ssd-field-study-core then runs
    // unchanged on it.
}
