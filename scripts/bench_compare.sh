#!/usr/bin/env bash
# Diff the two most recent bench-history entries per bench id.
#
#   scripts/bench_compare.sh              # all bench ids
#   scripts/bench_compare.sh paper_scale  # ids containing "paper_scale"
#
# History files are written by every `cargo bench` run (see
# ssd_bench::harness) under target/bench-history/.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q --offline -p ssd-bench --bin bench_compare -- "$@"
