#!/usr/bin/env bash
# Runs the in-tree static analyzer over the workspace. Exit codes:
#   0  clean
#   1  violations (printed as file:line: [rule] message)
#   2  usage or I/O error
#
#   scripts/lint.sh                    # all rules
#   scripts/lint.sh --rule hermeticity # one rule family
#   scripts/lint.sh --list-rules      # what is enforced
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run -q --offline --release -p ssd-lint -- --root . "$@"
