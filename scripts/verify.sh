#!/usr/bin/env bash
# Full verification sweep for the hermetic workspace. Everything here must
# pass with no network access and no crate registry.
#
#   scripts/verify.sh          # tier-1 + full workspace + benches compile
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== offline build (debug) =="
cargo build --offline

echo "== static analysis: ssd-lint (all rules, JSON report) =="
cargo build -q --offline --release -p ssd-lint
lint_start="$(date +%s)"
if ! target/release/ssd-lint --root . --format json > target/lint-report.json; then
  echo "ERROR: lint violations — report follows (also at target/lint-report.json)"
  cat target/lint-report.json
  exit 1
fi
lint_elapsed="$(( $(date +%s) - lint_start ))"
grep -q '"count": 0' target/lint-report.json
echo "lint report: target/lint-report.json (clean, ${lint_elapsed}s)"
# Runtime budget smoke: the analyzer must stay cheap enough to run
# first on every verify sweep (a cold workspace walk is ~100ms; 60s
# catches an accidental quadratic blowup, not normal variance).
if [ "${lint_elapsed}" -gt 60 ]; then
  echo "ERROR: ssd-lint runtime budget exceeded (${lint_elapsed}s > 60s)"
  exit 1
fi

echo "== doc gate: rustdoc builds warning-free =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: root test suite =="
cargo test -q --offline

echo "== full workspace test suite =="
cargo test -q --offline --workspace

echo "== benches compile (all 14 targets) =="
cargo bench --no-run --offline --workspace

echo "== bench smoke: bench_sim (incl. fastforward + encode_stream/decode_stream) + ML kernels + flat predict + history compare =="
SSD_BENCH_SAMPLES=2 cargo bench --offline -p ssd-bench --bench bench_sim

SSD_BENCH_SAMPLES=2 cargo bench --offline -p ssd-bench --bench bench_ml_kernels train_2k_rows
SSD_BENCH_SAMPLES=2 cargo bench --offline -p ssd-bench --bench bench_flat_predict flat_predict
scripts/bench_compare.sh

echo "== streaming smoke: generate -> summarize, truncated/corrupt archives rejected =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
# 800 days so staggered deployment leaves real report data in the file
# (short horizons produce near-empty archives a truncation can't corrupt).
target/release/ssdgen --out "$smoke_dir" --drives 7 --days 800 --seed 99 --format bin
target/release/ssdstat --trace "$smoke_dir/trace.ssdfs" > /dev/null
archive_bytes="$(wc -c < "$smoke_dir/trace.ssdfs")"
head -c "$((archive_bytes / 2))" "$smoke_dir/trace.ssdfs" > "$smoke_dir/truncated.ssdfs"
if target/release/ssdstat --trace "$smoke_dir/truncated.ssdfs" > /dev/null 2>&1; then
  echo "ERROR: ssdstat accepted a truncated archive"; exit 1
fi
printf 'not an archive' > "$smoke_dir/corrupt.ssdfs"
if target/release/ssdstat --trace "$smoke_dir/corrupt.ssdfs" > /dev/null 2>&1; then
  echo "ERROR: ssdstat accepted a corrupt archive"; exit 1
fi

echo "== fast-forward smoke: --fast-forward archive byte-identical, --importance decodable =="
target/release/ssdgen --out "$smoke_dir/ff" --drives 7 --days 800 --seed 99 \
  --format bin --fast-forward
cmp "$smoke_dir/trace.ssdfs" "$smoke_dir/ff/trace.ssdfs" \
  || { echo "ERROR: fast-forward archive diverged from day-by-day bytes"; exit 1; }
target/release/ssdgen --out "$smoke_dir/imp" --drives 7 --days 800 --seed 99 \
  --format bin --fast-forward --importance 4
target/release/ssdstat --trace "$smoke_dir/imp/trace.ssdfs" > /dev/null

echo "== online prediction smoke: train + rank streamed fleet, bad archives rejected =="
# A larger fleet so the training pass sees both classes (swaps are rare).
target/release/ssdgen --out "$smoke_dir/predict" --drives 40 --days 800 --seed 11 --format bin
target/release/ssdpredict --trace "$smoke_dir/predict/trace.ssdfs" \
  --lookahead 14 --sample-rate 0.5 --seed 7 --trees 10 > /dev/null
if target/release/ssdpredict --trace "$smoke_dir/truncated.ssdfs" > /dev/null 2>&1; then
  echo "ERROR: ssdpredict accepted a truncated archive"; exit 1
fi
if target/release/ssdpredict --trace "$smoke_dir/corrupt.ssdfs" > /dev/null 2>&1; then
  echo "ERROR: ssdpredict accepted a corrupt archive"; exit 1
fi

echo "== fleet service smoke: framed queries answered, malformed frames rejected =="
# Frame = 4-byte little-endian length prefix + JSON body.
frame() {
  local body="$1" len=${#1}
  # shellcheck disable=SC2059  # the format string is built from hex escapes
  printf "$(printf '\\x%02x\\x%02x\\x%02x\\x%02x' \
    "$((len & 0xff))" "$((len >> 8 & 0xff))" "$((len >> 16 & 0xff))" "$((len >> 24 & 0xff))")"
  printf '%s' "$body"
}
{ frame '{"q":"info"}'; frame '[{"q":"summary"},{"q":"topk","k":3}]'; } \
  | target/release/ssdserve --trace "$smoke_dir/predict/trace.ssdfs" \
      --shards 3 --trees 8 --seed 7 --lookahead 14 --sample-rate 0.5 \
      > "$smoke_dir/serve_out.bin"
serve_bytes="$(wc -c < "$smoke_dir/serve_out.bin")"
if [ "$serve_bytes" -lt 8 ]; then
  echo "ERROR: ssdserve produced no response frames"; exit 1
fi
if frame 'this is not json' \
  | target/release/ssdserve --trace "$smoke_dir/predict/trace.ssdfs" \
      --shards 2 --model none > /dev/null 2>&1; then
  echo "ERROR: ssdserve accepted a malformed frame"; exit 1
fi

echo "== examples compile =="
cargo build --offline --examples

echo "verify: all green"
