#!/usr/bin/env bash
# Full verification sweep for the hermetic workspace. Everything here must
# pass with no network access and no crate registry.
#
#   scripts/verify.sh          # tier-1 + full workspace + benches compile
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== offline build (debug) =="
cargo build --offline

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: root test suite =="
cargo test -q --offline

echo "== full workspace test suite =="
cargo test -q --offline --workspace

echo "== benches compile (all 12 targets) =="
cargo bench --no-run --offline --workspace

echo "== bench smoke: bench_sim + ML training kernels + history compare =="
SSD_BENCH_SAMPLES=2 cargo bench --offline -p ssd-bench --bench bench_sim
SSD_BENCH_SAMPLES=2 cargo bench --offline -p ssd-bench --bench bench_ml_kernels train_2k_rows
scripts/bench_compare.sh

echo "== examples compile =="
cargo build --offline --examples

echo "verify: all green"
