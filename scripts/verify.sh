#!/usr/bin/env bash
# Full verification sweep for the hermetic workspace. Everything here must
# pass with no network access and no crate registry.
#
#   scripts/verify.sh          # tier-1 + full workspace + benches compile
#
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== offline build (debug) =="
cargo build --offline

echo "== static analysis: ssd-lint (all rules) =="
scripts/lint.sh

echo "== doc gate: rustdoc builds warning-free =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --workspace

echo "== tier-1: release build =="
cargo build --release --offline

echo "== tier-1: root test suite =="
cargo test -q --offline

echo "== full workspace test suite =="
cargo test -q --offline --workspace

echo "== benches compile (all 14 targets) =="
cargo bench --no-run --offline --workspace

echo "== bench smoke: bench_sim (incl. fastforward + encode_stream/decode_stream) + ML kernels + flat predict + history compare =="
SSD_BENCH_SAMPLES=2 cargo bench --offline -p ssd-bench --bench bench_sim

echo "== deprecation gate: no in-tree caller of the deprecated generate_fleet* wrappers =="
# The wrappers live in crates/sim/src/fleet.rs (definitions + equivalence
# test) and are re-exported from crates/sim/src/lib.rs; everything else
# must use the FleetGen builder. Comment/doc mentions are fine.
if grep -rn 'generate_fleet' --include='*.rs' src tests examples crates \
  | grep -v '^crates/sim/src/fleet\.rs:' \
  | grep -v '^crates/sim/src/lib\.rs:' \
  | grep -v -E '^[^:]+:[0-9]+:\s*//'; then
  echo "ERROR: deprecated generate_fleet* referenced outside crates/sim wrappers"; exit 1
fi
SSD_BENCH_SAMPLES=2 cargo bench --offline -p ssd-bench --bench bench_ml_kernels train_2k_rows
SSD_BENCH_SAMPLES=2 cargo bench --offline -p ssd-bench --bench bench_flat_predict flat_predict
scripts/bench_compare.sh

echo "== streaming smoke: generate -> summarize, truncated/corrupt archives rejected =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
# 800 days so staggered deployment leaves real report data in the file
# (short horizons produce near-empty archives a truncation can't corrupt).
target/release/ssdgen --out "$smoke_dir" --drives 7 --days 800 --seed 99 --format bin
target/release/ssdstat --trace "$smoke_dir/trace.ssdfs" > /dev/null
archive_bytes="$(wc -c < "$smoke_dir/trace.ssdfs")"
head -c "$((archive_bytes / 2))" "$smoke_dir/trace.ssdfs" > "$smoke_dir/truncated.ssdfs"
if target/release/ssdstat --trace "$smoke_dir/truncated.ssdfs" > /dev/null 2>&1; then
  echo "ERROR: ssdstat accepted a truncated archive"; exit 1
fi
printf 'not an archive' > "$smoke_dir/corrupt.ssdfs"
if target/release/ssdstat --trace "$smoke_dir/corrupt.ssdfs" > /dev/null 2>&1; then
  echo "ERROR: ssdstat accepted a corrupt archive"; exit 1
fi

echo "== fast-forward smoke: --fast-forward archive byte-identical, --importance decodable =="
target/release/ssdgen --out "$smoke_dir/ff" --drives 7 --days 800 --seed 99 \
  --format bin --fast-forward
cmp "$smoke_dir/trace.ssdfs" "$smoke_dir/ff/trace.ssdfs" \
  || { echo "ERROR: fast-forward archive diverged from day-by-day bytes"; exit 1; }
target/release/ssdgen --out "$smoke_dir/imp" --drives 7 --days 800 --seed 99 \
  --format bin --fast-forward --importance 4
target/release/ssdstat --trace "$smoke_dir/imp/trace.ssdfs" > /dev/null

echo "== online prediction smoke: train + rank streamed fleet, bad archives rejected =="
# A larger fleet so the training pass sees both classes (swaps are rare).
target/release/ssdgen --out "$smoke_dir/predict" --drives 40 --days 800 --seed 11 --format bin
target/release/ssdpredict --trace "$smoke_dir/predict/trace.ssdfs" \
  --lookahead 14 --sample-rate 0.5 --seed 7 --trees 10 > /dev/null
if target/release/ssdpredict --trace "$smoke_dir/truncated.ssdfs" > /dev/null 2>&1; then
  echo "ERROR: ssdpredict accepted a truncated archive"; exit 1
fi
if target/release/ssdpredict --trace "$smoke_dir/corrupt.ssdfs" > /dev/null 2>&1; then
  echo "ERROR: ssdpredict accepted a corrupt archive"; exit 1
fi

echo "== fleet service smoke: framed queries answered, malformed frames rejected =="
# Frame = 4-byte little-endian length prefix + JSON body.
frame() {
  local body="$1" len=${#1}
  # shellcheck disable=SC2059  # the format string is built from hex escapes
  printf "$(printf '\\x%02x\\x%02x\\x%02x\\x%02x' \
    "$((len & 0xff))" "$((len >> 8 & 0xff))" "$((len >> 16 & 0xff))" "$((len >> 24 & 0xff))")"
  printf '%s' "$body"
}
{ frame '{"q":"info"}'; frame '[{"q":"summary"},{"q":"topk","k":3}]'; } \
  | target/release/ssdserve --trace "$smoke_dir/predict/trace.ssdfs" \
      --shards 3 --trees 8 --seed 7 --lookahead 14 --sample-rate 0.5 \
      > "$smoke_dir/serve_out.bin"
serve_bytes="$(wc -c < "$smoke_dir/serve_out.bin")"
if [ "$serve_bytes" -lt 8 ]; then
  echo "ERROR: ssdserve produced no response frames"; exit 1
fi
if frame 'this is not json' \
  | target/release/ssdserve --trace "$smoke_dir/predict/trace.ssdfs" \
      --shards 2 --model none > /dev/null 2>&1; then
  echo "ERROR: ssdserve accepted a malformed frame"; exit 1
fi

echo "== examples compile =="
cargo build --offline --examples

echo "verify: all green"
