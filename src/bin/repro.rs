//! Regenerates every table and figure of the paper from a simulated fleet —
//! or from a real trace.
//!
//! ```text
//! repro [--scale test|default|paper] [--seed N] [--json DIR]
//!       [--trace PATH [--horizon DAYS]] [IDS...]
//! ```
//!
//! `IDS` are experiment identifiers (`tab1`, `fig6`, …) as listed in
//! DESIGN.md; with no ids, every experiment runs. `--json DIR` additionally
//! writes each result as JSON for EXPERIMENTS.md bookkeeping. With
//! `--trace`, the fleet is loaded from an archive / JSON export / CSV
//! directory (`--horizon` required for CSV) instead of simulated, so the
//! paper's analyses run against real field data in this tool's schema.

#![forbid(unsafe_code)]

use ssd_field_study_core::predict::{
    age_analysis, error_pred, importance, models, per_model, sweep,
};
use ssd_field_study_core::report::render_series;
use ssd_field_study_core::{aging, characterize, errors_analysis, lifecycle};
use ssd_field_study_core::{PredictConfig, Series};
use ssd_field_study::cli::{self, ArgStream, BinError, UsageError};
use ssd_sim::{FleetGen, SimConfig};
use ssd_types::source::TraceSource;
use ssd_types::FleetTrace;

const USAGE: &str = "repro [--scale test|default|paper] [--seed N] [--json DIR] \
                     [--trace PATH [--horizon DAYS]] [IDS...]";

struct Args {
    scale: String,
    seed: u64,
    json_dir: Option<String>,
    trace: Option<String>,
    horizon: Option<u32>,
    ids: Vec<String>,
}

fn parse_args() -> Result<Args, UsageError> {
    let mut args = Args {
        scale: "default".into(),
        seed: 7,
        json_dir: None,
        trace: None,
        horizon: None,
        ids: Vec::new(),
    };
    let mut it = ArgStream::from_env(USAGE);
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--scale" => args.scale = it.value("--scale")?,
            "--seed" => args.seed = it.parsed("--seed")?,
            "--json" => args.json_dir = Some(it.value("--json")?),
            "--trace" => args.trace = Some(it.value("--trace")?),
            "--horizon" => args.horizon = Some(it.parsed("--horizon")?),
            // Bare tokens are experiment ids; unknown flags still error.
            flag if flag.starts_with('-') => return Err(it.unknown(flag)),
            id => args.ids.push(id.to_string()),
        }
    }
    Ok(args)
}

const ALL_IDS: [&str; 22] = [
    "fig1", "tab1", "tab2", "tab3", "tab4", "fig3", "fig4", "fig5", "tab5", "fig6", "fig7",
    "fig8", "fig9", "fig10", "fig11", "tab6", "fig12", "fig13", "tab7", "fig14", "fig15",
    "fig16",
];
const ALL_IDS_WITH_TAB8: [&str; 23] = [
    "fig1", "tab1", "tab2", "tab3", "tab4", "fig3", "fig4", "fig5", "tab5", "fig6", "fig7",
    "fig8", "fig9", "fig10", "fig11", "tab6", "fig12", "fig13", "tab7", "fig14", "fig15",
    "fig16", "tab8",
];

fn save_json(dir: &Option<String>, id: &str, value: &impl ssd_types::json::ToJson) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create json dir");
        let path = format!("{dir}/{id}.json");
        let body = ssd_types::json::to_string_pretty(value);
        std::fs::write(&path, body).expect("write json");
        eprintln!("  [wrote {path}]");
    }
}

fn print_series(title: &str, series: &[Series]) {
    println!("{}", render_series(title, series, 16));
}

fn run_experiment(id: &str, trace: &FleetTrace, cfg: &PredictConfig, json: &Option<String>) {
    println!("=== {id} ===");
    match id {
        "fig1" => {
            let r = characterize::trace_coverage(trace);
            print_series(
                "Figure 1: CDFs of max observed age and data count (years)",
                &[r.max_age.clone(), r.data_count.clone()],
            );
            println!(
                "fraction of drives observed 4+ years: {:.3}\n",
                r.frac_observed_4y_plus
            );
            save_json(json, id, &r);
        }
        "tab1" => {
            let r = characterize::error_incidence(trace);
            println!("{}", r.table());
            save_json(json, id, &r);
        }
        "tab2" => {
            let r = characterize::correlation_matrix(trace);
            println!("{}", r.table());
            save_json(json, id, &r);
        }
        "tab3" => {
            let r = lifecycle::failure_incidence(trace);
            println!("{}", r.table());
            save_json(json, id, &r);
        }
        "tab4" => {
            let r = lifecycle::failure_count_distribution(trace);
            println!("{}", r.table());
            save_json(json, id, &r);
        }
        "fig3" | "fig4" | "fig5" => {
            let series = lifecycle::lifecycle_series(trace);
            let idx = match id {
                "fig3" => 0,
                "fig4" => 1,
                _ => 2,
            };
            print_series("Lifecycle CDF", &series[idx..=idx]);
            save_json(json, id, &series[idx]);
        }
        "tab5" => {
            let r = lifecycle::repair_reentry(trace);
            println!("{}", r.table());
            save_json(json, id, &r);
        }
        "fig6" => {
            let r = aging::failure_age(trace);
            print_series(
                "Figure 6: failure age CDF (months) and normalized monthly rate",
                &[r.age_cdf.clone(), r.monthly_rate.clone()],
            );
            println!(
                "failures <30d: {:.1}%   <90d: {:.1}%\n",
                r.frac_under_30d * 100.0,
                r.frac_under_90d * 100.0
            );
            save_json(json, id, &r);
        }
        "fig7" => {
            let r = aging::write_intensity(trace);
            println!("Figure 7: daily write-intensity quartiles by age month");
            println!("{:>6} {:>14} {:>14} {:>14}", "month", "Q1", "median", "Q3");
            for &(m, q1, q2, q3) in r.quartiles_by_month.iter().step_by(3) {
                println!("{m:>6} {q1:>14.3e} {q2:>14.3e} {q3:>14.3e}");
            }
            println!();
            save_json(json, id, &r);
        }
        "fig8" | "fig9" => {
            let r = aging::wear_at_failure(trace);
            if id == "fig8" {
                print_series(
                    "Figure 8: P/E at failure (CDF + normalized per-250-cycle rate)",
                    &[r.pe_cdf.clone(), r.rate_per_bin.clone()],
                );
                println!("failures below 1500 P/E: {:.1}%\n", r.frac_under_1500 * 100.0);
            } else {
                print_series(
                    "Figure 9: P/E at failure, young vs old",
                    &[r.pe_cdf_young.clone(), r.pe_cdf_old.clone()],
                );
            }
            save_json(json, id, &r);
        }
        "fig10" => {
            let r = errors_analysis::cumulative_error_cdfs(trace);
            print_series("Figure 10a: cumulative bad blocks", &r.bad_blocks);
            print_series("Figure 10b: cumulative uncorrectable errors", &r.uncorrectable);
            println!(
                "zero-UE fractions — young: {:.2} old: {:.2} not-failed: {:.2}",
                r.zero_ue_fracs[0], r.zero_ue_fracs[1], r.zero_ue_fracs[2]
            );
            println!(
                "symptomless failures: {:.1}%\n",
                r.symptomless_failure_frac * 100.0
            );
            save_json(json, id, &r);
        }
        "fig11" => {
            let r = errors_analysis::pre_failure_errors(trace);
            let mut top = r.p_ue_within.to_vec();
            top.push(r.baseline.clone());
            print_series("Figure 11 (top): P(UE within last n days)", &top);
            print_series(
                "Figure 11 (bottom): UE-count percentiles by day before failure",
                &r.count_percentiles,
            );
            save_json(json, id, &r);
        }
        "tab6" => {
            let r = models::model_comparison(trace, cfg, &[1, 2, 3, 7]);
            println!("{}", r.table());
            save_json(json, id, &r);
        }
        "fig12" => {
            let r = sweep::lookahead_sweep(trace, cfg, &[1, 2, 3, 5, 7, 10, 14, 21, 30]);
            print_series("Figure 12: RF AUC vs lookahead N", &[r.auc.clone()]);
            save_json(json, id, &r);
        }
        "fig13" => {
            let r = per_model::per_model_roc(trace, cfg);
            let curves: Vec<Series> = r.iter().map(|m| m.curve.clone()).collect();
            print_series("Figure 13: per-model ROC curves (RF, N=1)", &curves);
            save_json(json, id, &r);
        }
        "tab7" => {
            let r = per_model::transfer_matrix(trace, cfg);
            println!("{}", r.table());
            save_json(json, id, &r);
        }
        "fig14" => {
            let r = age_analysis::tpr_by_age(trace, cfg, &[0.85, 0.90, 0.95]);
            print_series("Figure 14: TPR by drive age (months)", &r.series);
            save_json(json, id, &r);
        }
        "fig15" => {
            let r = age_analysis::young_old_roc(trace, cfg);
            print_series(
                "Figure 15: young vs old ROC (jointly trained)",
                &[r.young_curve.clone(), r.old_curve.clone()],
            );
            println!(
                "separately trained: young {:.3} ± {:.3}, old {:.3} ± {:.3}\n",
                r.young_trained_auc.0,
                r.young_trained_auc.1,
                r.old_trained_auc.0,
                r.old_trained_auc.1
            );
            save_json(json, id, &r);
        }
        "fig16" => {
            let (young, old) = importance::feature_importance(trace, cfg);
            println!("{}", young.table(10));
            println!("{}", old.table(10));
            save_json(json, "fig16_young", &young);
            save_json(json, "fig16_old", &old);
        }
        "tab8" => {
            let r = error_pred::error_prediction(trace, cfg);
            println!("{}", r.table());
            save_json(json, id, &r);
        }
        "obs" => {
            let mut checks = ssd_field_study_core::audit_trace_observations(trace);
            checks.extend(ssd_field_study_core::audit_model_observations(trace, cfg));
            println!(
                "{}",
                ssd_field_study_core::observations::render_checks(&checks)
            );
            save_json(json, id, &checks);
        }
        "reentry" => {
            let r = ssd_field_study_core::reentry_analysis(trace);
            println!("{}", r.table());
            save_json(json, id, &r);
        }
        other => eprintln!("unknown experiment id: {other} (see DESIGN.md)"),
    }
}

fn run(args: &Args) -> Result<(), BinError> {
    let trace = if let Some(path) = &args.trace {
        // Real-data mode: the experiments need random access across the
        // whole fleet, so the trace loads resident.
        let source = TraceSource::from_path(path, args.horizon)?;
        let t0 = std::time::Instant::now();
        let trace = source.load()?;
        trace
            .validate()
            .map_err(|e| format!("trace invariants: {e}"))?;
        eprintln!(
            "loaded {path}: {} drives, {} drive-days, {} swaps ({:.1}s)",
            trace.n_drives(),
            trace.total_drive_days(),
            trace.total_swaps(),
            t0.elapsed().as_secs_f64()
        );
        trace
    } else {
        let sim_cfg = match args.scale.as_str() {
            "test" => SimConfig::test_scale(args.seed),
            "default" => SimConfig::default_scale(args.seed),
            "paper" => SimConfig::paper_scale(args.seed),
            other => return Err(format!("unknown scale '{other}' (use test|default|paper)").into()),
        };
        eprintln!(
            "generating fleet: {} drives/model over {} days (seed {}) ...",
            sim_cfg.drives_per_model, sim_cfg.horizon_days, sim_cfg.seed
        );
        let t0 = std::time::Instant::now();
        let trace = FleetGen::new(&sim_cfg).trace();
        eprintln!(
            "fleet ready: {} drives, {} drive-days, {} swaps ({:.1}s)",
            trace.n_drives(),
            trace.total_drive_days(),
            trace.total_swaps(),
            t0.elapsed().as_secs_f64()
        );
        trace
    };

    let mut predict_cfg = if args.scale == "test" {
        PredictConfig::fast(args.seed)
    } else {
        PredictConfig::default()
    };
    predict_cfg.seed = args.seed;
    predict_cfg.cv.seed = args.seed;

    let ids: Vec<String> = if args.ids.is_empty() {
        // tab8 runs 30 cross-validations; include it in full runs only.
        if args.scale == "test" {
            ALL_IDS.iter().map(|s| s.to_string()).collect()
        } else {
            ALL_IDS_WITH_TAB8.iter().map(|s| s.to_string()).collect()
        }
    } else {
        args.ids.clone()
    };
    for id in &ids {
        let t = std::time::Instant::now();
        run_experiment(id, &trace, &predict_cfg, &args.json_dir);
        eprintln!("  [{id} took {:.1}s]", t.elapsed().as_secs_f64());
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => cli::usage_exit("repro", &e),
    };
    if let Err(e) = run(&args) {
        cli::runtime_exit("repro", &*e);
    }
}
