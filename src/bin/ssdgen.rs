//! Generates a calibrated synthetic fleet trace and archives it.
//!
//! ```text
//! ssdgen --out DIR [--drives N] [--days D | --years Y] [--seed S]
//!        [--format bin|json|csv] [--fast-forward] [--importance BOOST]
//! ```
//!
//! Formats:
//! * `bin`  — compact varint archive (`trace.ssdfs`), smallest; streamed
//!   to disk chunk-by-chunk, so paper-scale fleets never hold the archive
//!   (or a `FleetTrace`) in memory;
//! * `json` — `trace.json`, for ad-hoc tooling;
//! * `csv`  — `reports.csv` + `swaps.csv`, for pandas/R.
//!
//! `--fast-forward` switches generation to the analytic span-skipping
//! traversal — byte-identical output, a fraction of the work on
//! event-sparse fleets. `--importance BOOST` oversamples the defective
//! infant subpopulation by `BOOST` and records per-drive log-weights in
//! the archive for downstream weighted estimators.

#![forbid(unsafe_code)]

use ssd_field_study::cli::{self, ArgStream, BinError, UsageError};
use ssd_sim::{FleetGen, GenMode, Sampling, SimConfig};
use ssd_types::{codec, csv};
use std::fs::File;
use std::io::{BufWriter, Write};

const USAGE: &str = "ssdgen --out DIR [--drives N] [--days D | --years Y] [--seed S] \
                     [--format bin|json|csv] [--fast-forward] [--importance BOOST]";

struct Args {
    out: String,
    drives_per_model: u32,
    horizon_days: u32,
    seed: u64,
    format: String,
    fast_forward: bool,
    importance: Option<f64>,
}

fn parse_args() -> Result<Args, UsageError> {
    let mut args = Args {
        out: String::new(),
        drives_per_model: 2000,
        horizon_days: 6 * cli::DAYS_PER_YEAR,
        seed: 1,
        format: "bin".into(),
        fast_forward: false,
        importance: None,
    };
    let mut it = ArgStream::from_env(USAGE);
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--out" => args.out = it.value("--out")?,
            "--drives" => args.drives_per_model = it.parsed("--drives")?,
            "--days" => args.horizon_days = it.parsed("--days")?,
            "--years" => {
                args.horizon_days = it.parsed::<u32>("--years")?.saturating_mul(cli::DAYS_PER_YEAR)
            }
            "--seed" => args.seed = it.parsed("--seed")?,
            "--format" => args.format = it.value("--format")?,
            "--fast-forward" => args.fast_forward = true,
            "--importance" => {
                let boost: f64 = it.parsed("--importance")?;
                if !(boost >= 1.0 && boost.is_finite()) {
                    return Err("--importance must be a finite boost >= 1.0".into());
                }
                args.importance = Some(boost);
            }
            other => return Err(it.unknown(other)),
        }
    }
    if args.out.is_empty() {
        return Err("--out is required".into());
    }
    Ok(args)
}

fn fleet_gen<'a>(args: &Args, cfg: &'a SimConfig) -> FleetGen<'a> {
    let mode = if args.fast_forward {
        GenMode::FastForward
    } else {
        GenMode::DayByDay
    };
    let sampling = match args.importance {
        Some(boost) => Sampling::Importance { boost },
        None => Sampling::Uniform,
    };
    FleetGen::new(cfg).mode(mode).sampling(sampling)
}

fn run(args: &Args) -> Result<(), BinError> {
    let cfg = SimConfig {
        drives_per_model: args.drives_per_model,
        horizon_days: args.horizon_days,
        seed: args.seed,
        ..SimConfig::default()
    };
    eprintln!(
        "generating {} drives over {} days (seed {})...",
        cfg.total_drives(),
        cfg.horizon_days,
        cfg.seed
    );
    let gen = fleet_gen(args, &cfg);
    std::fs::create_dir_all(&args.out).map_err(|e| format!("create {}: {e}", args.out))?;
    match args.format.as_str() {
        "bin" => {
            // Streamed: drives are generated and encoded in bounded waves
            // straight to the file; the archive (byte-identical to the
            // in-memory path, pinned by tests/determinism.rs) is never
            // resident.
            let path = format!("{}/trace.ssdfs", args.out);
            let file = File::create(&path).map_err(|e| format!("create {path}: {e}"))?;
            let mut w = BufWriter::new(file);
            let stats = gen.run(&mut w)?;
            w.flush()?;
            eprintln!(
                "generated {} drive-days, {} swaps",
                stats.drive_days, stats.swaps
            );
            eprintln!("wrote {path} ({:.2} MiB)", stats.bytes as f64 / 1048576.0);
        }
        "json" => {
            let trace = gen.trace();
            trace
                .validate()
                .map_err(|e| format!("generated trace must validate: {e}"))?;
            eprintln!(
                "generated {} drive-days, {} swaps",
                trace.total_drive_days(),
                trace.total_swaps()
            );
            let path = format!("{}/trace.json", args.out);
            let body = codec::trace_to_json(&trace)?;
            std::fs::write(&path, &body).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path} ({:.2} MiB)", body.len() as f64 / 1048576.0);
        }
        "csv" => {
            if args.importance.is_some() {
                return Err("csv export has no weight column; use --format bin|json \
                            with --importance"
                    .into());
            }
            let trace = gen.trace();
            trace
                .validate()
                .map_err(|e| format!("generated trace must validate: {e}"))?;
            eprintln!(
                "generated {} drive-days, {} swaps",
                trace.total_drive_days(),
                trace.total_swaps()
            );
            let rp = format!("{}/reports.csv", args.out);
            let sp = format!("{}/swaps.csv", args.out);
            let mut rw = BufWriter::new(
                File::create(&rp).map_err(|e| format!("create {rp}: {e}"))?,
            );
            csv::write_reports_csv(&trace, &mut rw)?;
            rw.flush()?;
            let mut sw = BufWriter::new(
                File::create(&sp).map_err(|e| format!("create {sp}: {e}"))?,
            );
            csv::write_swaps_csv(&trace, &mut sw)?;
            sw.flush()?;
            eprintln!("wrote {rp} and {sp}");
        }
        other => return Err(format!("unknown format '{other}' (use bin|json|csv)").into()),
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => cli::usage_exit("ssdgen", &e),
    };
    if let Err(e) = run(&args) {
        cli::runtime_exit("ssdgen", &*e);
    }
}
