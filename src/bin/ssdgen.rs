//! Generates a calibrated synthetic fleet trace and archives it.
//!
//! ```text
//! ssdgen --out DIR [--drives N] [--days D] [--seed S] [--format bin|json|csv]
//! ```
//!
//! Formats:
//! * `bin`  — compact varint archive (`trace.ssdfs`), smallest;
//! * `json` — `trace.json`, for ad-hoc tooling;
//! * `csv`  — `reports.csv` + `swaps.csv`, for pandas/R.

use ssd_sim::{generate_fleet, SimConfig};
use ssd_types::{codec, csv};
use std::fs::File;
use std::io::{BufWriter, Write};

struct Args {
    out: String,
    drives_per_model: u32,
    horizon_days: u32,
    seed: u64,
    format: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: String::new(),
        drives_per_model: 2000,
        horizon_days: 6 * 365,
        seed: 1,
        format: "bin".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = next("--out"),
            "--drives" => args.drives_per_model = next("--drives").parse().expect("drives"),
            "--days" => args.horizon_days = next("--days").parse().expect("days"),
            "--seed" => args.seed = next("--seed").parse().expect("seed"),
            "--format" => args.format = next("--format"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: ssdgen --out DIR [--drives N] [--days D] [--seed S] [--format bin|json|csv]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(!args.out.is_empty(), "--out is required");
    args
}

fn main() {
    let args = parse_args();
    let cfg = SimConfig {
        drives_per_model: args.drives_per_model,
        horizon_days: args.horizon_days,
        seed: args.seed,
    };
    eprintln!(
        "generating {} drives over {} days (seed {})...",
        cfg.total_drives(),
        cfg.horizon_days,
        cfg.seed
    );
    let trace = generate_fleet(&cfg);
    trace.validate().expect("generated trace must validate");
    eprintln!(
        "generated {} drive-days, {} swaps",
        trace.total_drive_days(),
        trace.total_swaps()
    );
    std::fs::create_dir_all(&args.out).expect("create output dir");
    match args.format.as_str() {
        "bin" => {
            let path = format!("{}/trace.ssdfs", args.out);
            let bytes = codec::encode_trace(&trace);
            std::fs::write(&path, &bytes).expect("write archive");
            eprintln!("wrote {path} ({:.2} MiB)", bytes.len() as f64 / 1048576.0);
        }
        "json" => {
            let path = format!("{}/trace.json", args.out);
            let body = codec::trace_to_json(&trace).expect("serialize");
            std::fs::write(&path, &body).expect("write json");
            eprintln!("wrote {path} ({:.2} MiB)", body.len() as f64 / 1048576.0);
        }
        "csv" => {
            let rp = format!("{}/reports.csv", args.out);
            let sp = format!("{}/swaps.csv", args.out);
            let mut rw = BufWriter::new(File::create(&rp).expect("create reports.csv"));
            csv::write_reports_csv(&trace, &mut rw).expect("write reports");
            rw.flush().expect("flush");
            let mut sw = BufWriter::new(File::create(&sp).expect("create swaps.csv"));
            csv::write_swaps_csv(&trace, &mut sw).expect("write swaps");
            sw.flush().expect("flush");
            eprintln!("wrote {rp} and {sp}");
        }
        other => {
            eprintln!("unknown format '{other}' (use bin|json|csv)");
            std::process::exit(1);
        }
    }
}
