//! Generates a calibrated synthetic fleet trace and archives it.
//!
//! ```text
//! ssdgen --out DIR [--drives N] [--days D] [--seed S] [--format bin|json|csv]
//! ```
//!
//! Formats:
//! * `bin`  — compact varint archive (`trace.ssdfs`), smallest; streamed
//!   to disk chunk-by-chunk, so paper-scale fleets never hold the archive
//!   (or a `FleetTrace`) in memory;
//! * `json` — `trace.json`, for ad-hoc tooling;
//! * `csv`  — `reports.csv` + `swaps.csv`, for pandas/R.

#![forbid(unsafe_code)]

use ssd_sim::{generate_fleet, generate_fleet_archive_to, SimConfig};
use ssd_types::{codec, csv};
use std::fs::File;
use std::io::{BufWriter, Write};

type BinError = Box<dyn std::error::Error>;

struct Args {
    out: String,
    drives_per_model: u32,
    horizon_days: u32,
    seed: u64,
    format: String,
}

fn parse_args() -> Result<Args, BinError> {
    let mut args = Args {
        out: String::new(),
        drives_per_model: 2000,
        horizon_days: 6 * 365,
        seed: 1,
        format: "bin".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match a.as_str() {
            "--out" => args.out = next("--out")?,
            "--drives" => {
                args.drives_per_model =
                    next("--drives")?.parse().map_err(|e| format!("--drives: {e}"))?
            }
            "--days" => {
                args.horizon_days = next("--days")?.parse().map_err(|e| format!("--days: {e}"))?
            }
            "--seed" => args.seed = next("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--format" => args.format = next("--format")?,
            "--help" | "-h" => {
                eprintln!(
                    "usage: ssdgen --out DIR [--drives N] [--days D] [--seed S] [--format bin|json|csv]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}").into()),
        }
    }
    if args.out.is_empty() {
        return Err("--out is required".into());
    }
    Ok(args)
}

fn run() -> Result<(), BinError> {
    let args = parse_args()?;
    let cfg = SimConfig {
        drives_per_model: args.drives_per_model,
        horizon_days: args.horizon_days,
        seed: args.seed,
    };
    eprintln!(
        "generating {} drives over {} days (seed {})...",
        cfg.total_drives(),
        cfg.horizon_days,
        cfg.seed
    );
    std::fs::create_dir_all(&args.out).map_err(|e| format!("create {}: {e}", args.out))?;
    match args.format.as_str() {
        "bin" => {
            // Streamed: drives are generated and encoded in bounded waves
            // straight to the file; the archive (byte-identical to the
            // in-memory path, pinned by tests/determinism.rs) is never
            // resident.
            let path = format!("{}/trace.ssdfs", args.out);
            let file = File::create(&path).map_err(|e| format!("create {path}: {e}"))?;
            let mut w = BufWriter::new(file);
            let stats = generate_fleet_archive_to(&cfg, &mut w)?;
            w.flush()?;
            eprintln!(
                "generated {} drive-days, {} swaps",
                stats.drive_days, stats.swaps
            );
            eprintln!("wrote {path} ({:.2} MiB)", stats.bytes as f64 / 1048576.0);
        }
        "json" => {
            let trace = generate_fleet(&cfg);
            trace
                .validate()
                .map_err(|e| format!("generated trace must validate: {e}"))?;
            eprintln!(
                "generated {} drive-days, {} swaps",
                trace.total_drive_days(),
                trace.total_swaps()
            );
            let path = format!("{}/trace.json", args.out);
            let body = codec::trace_to_json(&trace)?;
            std::fs::write(&path, &body).map_err(|e| format!("write {path}: {e}"))?;
            eprintln!("wrote {path} ({:.2} MiB)", body.len() as f64 / 1048576.0);
        }
        "csv" => {
            let trace = generate_fleet(&cfg);
            trace
                .validate()
                .map_err(|e| format!("generated trace must validate: {e}"))?;
            eprintln!(
                "generated {} drive-days, {} swaps",
                trace.total_drive_days(),
                trace.total_swaps()
            );
            let rp = format!("{}/reports.csv", args.out);
            let sp = format!("{}/swaps.csv", args.out);
            let mut rw = BufWriter::new(
                File::create(&rp).map_err(|e| format!("create {rp}: {e}"))?,
            );
            csv::write_reports_csv(&trace, &mut rw)?;
            rw.flush()?;
            let mut sw = BufWriter::new(
                File::create(&sp).map_err(|e| format!("create {sp}: {e}"))?,
            );
            csv::write_swaps_csv(&trace, &mut sw)?;
            sw.flush()?;
            eprintln!("wrote {rp} and {sp}");
        }
        other => return Err(format!("unknown format '{other}' (use bin|json|csv)").into()),
    }
    Ok(())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("ssdgen: {e}");
        std::process::exit(1);
    }
}
