//! Streams an archived fleet trace through the online prediction
//! pipeline: train on history, then rank every drive by its current-day
//! swap risk.
//!
//! ```text
//! ssdpredict --trace PATH [--horizon DAYS] [--model forest|gbdt]
//!            [--lookahead N] [--trees T] [--seed S] [--sample-rate R]
//!            [--top K]
//! ```
//!
//! `PATH` may be a `.ssdfs` binary archive, a `.json` export, or a CSV
//! directory (then `--horizon` is required). The run is two streaming
//! passes over the source, each holding one drive resident:
//!
//! 1. **Train** — `build_dataset_streaming` folds every drive into a
//!    labeled dataset (swap within `--lookahead` days), a random forest
//!    or GBDT is fitted, and the ensemble is flattened into contiguous
//!    node arrays (`ssd_ml::flat`).
//! 2. **Score** — each drive's history replays through [`OnlineFleet`]'s
//!    incremental feature state; one `predict_fleet_day` batch call then
//!    scores the whole fleet's current day, and the top `--top` risky
//!    drives are printed.
//!
//! Output is deterministic for fixed inputs and flags, for every
//! thread-pool size.

#![forbid(unsafe_code)]

use ssd_field_study::cli::{self, ArgStream, BinError, UsageError};
use ssd_field_study_core::features::{build_dataset_streaming, ExtractOptions};
use ssd_field_study_core::OnlineFleet;
use ssd_ml::{BatchScorer, FlatForest, FlatGbdt, ForestConfig, Gbdt, GbdtConfig, RandomForest};
use ssd_types::source::TraceSource;
use ssd_types::{DriveId, DriveLog, DriveModel};

const USAGE: &str = "ssdpredict --trace PATH [--horizon DAYS] [--model forest|gbdt] \
                     [--lookahead N] [--trees T] [--seed S] [--sample-rate R] [--top K]";

struct Args {
    trace: String,
    horizon: Option<u32>,
    model: String,
    lookahead: u32,
    trees: usize,
    seed: u64,
    sample_rate: f64,
    top: usize,
}

fn parse_args() -> Result<Args, UsageError> {
    let mut args = Args {
        trace: String::new(),
        horizon: None,
        model: "forest".into(),
        lookahead: 7,
        trees: 30,
        seed: 0,
        sample_rate: 1.0,
        top: 10,
    };
    let mut it = ArgStream::from_env(USAGE);
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--trace" => args.trace = it.value("--trace")?,
            "--horizon" => args.horizon = Some(it.parsed("--horizon")?),
            "--model" => args.model = it.value("--model")?,
            "--lookahead" => args.lookahead = it.parsed("--lookahead")?,
            "--trees" => args.trees = it.parsed("--trees")?,
            "--seed" => args.seed = it.parsed("--seed")?,
            "--sample-rate" => args.sample_rate = it.parsed("--sample-rate")?,
            "--top" => args.top = it.parsed("--top")?,
            other => return Err(it.unknown(other)),
        }
    }
    if args.trace.is_empty() {
        return Err("--trace is required".into());
    }
    if args.lookahead < 1 {
        return Err("--lookahead must be at least 1 day".into());
    }
    if !(args.sample_rate > 0.0 && args.sample_rate <= 1.0) {
        return Err("--sample-rate must be in (0, 1]".into());
    }
    if args.trees < 1 {
        return Err("--trees must be at least 1".into());
    }
    Ok(args)
}

/// Trains the requested model on the streamed dataset and flattens it.
fn train_scorer(
    args: &Args,
    data: &ssd_ml::Dataset,
) -> Result<Box<dyn BatchScorer>, BinError> {
    match args.model.as_str() {
        "forest" => {
            let cfg = ForestConfig {
                n_trees: args.trees,
                ..Default::default()
            };
            let forest = RandomForest::fit(&cfg, data, args.seed);
            Ok(Box::new(FlatForest::from_forest(&forest)))
        }
        "gbdt" => {
            let cfg = GbdtConfig {
                n_trees: args.trees,
                ..Default::default()
            };
            let model = Gbdt::fit(&cfg, data, args.seed);
            Ok(Box::new(FlatGbdt::from_gbdt(&model)))
        }
        other => Err(format!("unknown model '{other}' (use forest|gbdt)").into()),
    }
}

fn run(args: &Args) -> Result<(), BinError> {
    let source = TraceSource::from_path(&args.trace, args.horizon)?;

    // Pass 1: stream the trace into a labeled training set.
    let opts = ExtractOptions {
        lookahead_days: args.lookahead,
        negative_sample_rate: args.sample_rate,
        seed: args.seed,
        ..Default::default()
    };
    let mut reader = source.open()?;
    let data = build_dataset_streaming(&mut reader, &opts)?;
    let (pos, neg) = data.class_counts();
    if pos == 0 || neg == 0 {
        return Err(format!(
            "training data needs both classes: {pos} positive / {neg} negative rows \
             (try a longer trace or a larger --lookahead)"
        )
        .into());
    }
    let scorer = train_scorer(args, &data)?;
    eprintln!(
        "trained {} ({} trees) on {} rows ({pos} positive) in one streaming pass",
        scorer.scorer_name(),
        args.trees,
        data.n_rows()
    );

    // Pass 2: replay each drive's telemetry through the online feature
    // state, then score the whole fleet's current day in one batch.
    let mut reader = source.open()?;
    let mut fleet = OnlineFleet::new();
    let mut drive = DriveLog::new(DriveId(0), DriveModel::from_index(0));
    let mut drive_days = 0u64;
    while reader.next_drive_into(&mut drive)? {
        drive
            .validate()
            .map_err(|e| format!("trace invariants: {e}"))?;
        drive_days += drive.reports.len() as u64;
        fleet.observe_drive(&drive);
    }
    let mut scored = fleet.predict_fleet_day(scorer.as_ref());
    // Highest risk first; ties break toward the lower drive id so the
    // report is stable across runs and pool sizes.
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));

    let n = fleet.n_drives();
    let mean = if n == 0 {
        0.0
    } else {
        scored.iter().map(|(_, p)| p).sum::<f64>() / n as f64
    };
    println!("fleet risk (swap within {} days)", args.lookahead);
    println!("  drives:      {n}");
    println!("  drive-days:  {drive_days}");
    println!("  mean score:  {mean:.4}");
    println!();
    println!("top {} drives by current-day risk:", args.top.min(n));
    for (id, p) in scored.iter().take(args.top) {
        let model = fleet
            .model_of(*id)
            .map_or_else(|| "?".to_string(), |m| m.to_string());
        println!("  drive {:>6}  model {:<6}  score {:.4}", id.0, model, p);
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => cli::usage_exit("ssdpredict", &e),
    };
    if let Err(e) = run(&args) {
        cli::runtime_exit("ssdpredict", &*e);
    }
}
