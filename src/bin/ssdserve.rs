//! Long-running sharded fleet service: load an archive once, answer many
//! queries.
//!
//! ```text
//! ssdserve --trace PATH [--horizon DAYS] [--shards N] [--queue-cap N]
//!          [--model forest|gbdt|none] [--trees T] [--seed S]
//!          [--lookahead N] [--sample-rate R] [--socket PATH]
//! ```
//!
//! Startup makes two streaming passes over the trace: train a flattened
//! risk scorer (unless `--model none`), then deal drives round-robin onto
//! `--shards` resident workers. After the `ready` line on stderr, the
//! service answers length-prefixed JSON request frames (see
//! `ssd_field_study_core::serve::protocol`) on stdin/stdout — or, with
//! `--socket`, accepts concurrent connections on a Unix socket, where
//! co-arriving requests from different clients coalesce into shared shard
//! passes.
//!
//! Responses are byte-identical for any `--shards` value and any client
//! interleaving. Malformed frames get a typed error frame and a nonzero
//! exit (stdio mode) or a closed connection (socket mode).

#![forbid(unsafe_code)]

use ssd_field_study::cli::{self, ArgStream, BinError, UsageError};
use ssd_field_study_core::serve::{
    serve_connection, FleetService, Responder, ScorerSpec, ServeConfig,
};
use ssd_types::source::TraceSource;
use std::sync::Arc;

const USAGE: &str = "ssdserve --trace PATH [--horizon DAYS] [--shards N] \
                     [--queue-cap N] [--model forest|gbdt|none] [--trees T] [--seed S] \
                     [--lookahead N] [--sample-rate R] [--socket PATH]";

struct Args {
    trace: String,
    horizon: Option<u32>,
    shards: usize,
    queue_cap: usize,
    model: String,
    trees: usize,
    seed: u64,
    lookahead: u32,
    sample_rate: f64,
    socket: Option<String>,
}

fn parse_args() -> Result<Args, UsageError> {
    let mut args = Args {
        trace: String::new(),
        horizon: None,
        shards: 4,
        queue_cap: 16,
        model: "forest".into(),
        trees: 30,
        seed: 0,
        lookahead: 7,
        sample_rate: 1.0,
        socket: None,
    };
    let mut it = ArgStream::from_env(USAGE);
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--trace" => args.trace = it.value("--trace")?,
            "--horizon" => args.horizon = Some(it.parsed("--horizon")?),
            "--shards" => args.shards = it.parsed("--shards")?,
            "--queue-cap" => args.queue_cap = it.parsed("--queue-cap")?,
            "--model" => args.model = it.value("--model")?,
            "--trees" => args.trees = it.parsed("--trees")?,
            "--seed" => args.seed = it.parsed("--seed")?,
            "--lookahead" => args.lookahead = it.parsed("--lookahead")?,
            "--sample-rate" => args.sample_rate = it.parsed("--sample-rate")?,
            "--socket" => args.socket = Some(it.value("--socket")?),
            other => return Err(it.unknown(other)),
        }
    }
    if args.trace.is_empty() {
        return Err("--trace is required".into());
    }
    if args.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(args)
}

fn scorer_spec(args: &Args) -> Result<ScorerSpec, BinError> {
    match args.model.as_str() {
        "forest" => Ok(ScorerSpec::Forest { trees: args.trees }),
        "gbdt" => Ok(ScorerSpec::Gbdt { trees: args.trees }),
        "none" => Ok(ScorerSpec::None),
        other => Err(format!("unknown model '{other}' (use forest|gbdt|none)").into()),
    }
}

fn run(args: &Args) -> Result<(), BinError> {
    let source = TraceSource::from_path(&args.trace, args.horizon)?;
    let cfg = ServeConfig {
        shards: args.shards,
        queue_cap: args.queue_cap,
        scorer: scorer_spec(args)?,
        lookahead_days: args.lookahead,
        sample_rate: args.sample_rate,
        seed: args.seed,
    };
    let service = Arc::new(FleetService::load(&source, &cfg)?);
    let meta = service.meta();
    eprintln!(
        "ready: {} drives / {} drive-days on {} shards (scorer: {})",
        meta.n_drives,
        meta.drive_days,
        meta.n_shards,
        meta.scorer.unwrap_or("none"),
    );

    match &args.socket {
        Some(path) => serve_socket(path, service, args.queue_cap),
        None => {
            // stdio mode: one client, answered in-thread.
            let responder = Responder::Direct(service);
            let mut stdin = std::io::stdin().lock();
            let mut stdout = std::io::stdout().lock();
            serve_connection(&responder, &mut stdin, &mut stdout)?;
            Ok(())
        }
    }
}

#[cfg(unix)]
fn serve_socket(path: &str, service: Arc<FleetService>, queue_cap: usize) -> Result<(), BinError> {
    use ssd_field_study_core::serve::server::serve_unix;
    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)
        .map_err(|e| format!("bind {path}: {e}"))?;
    eprintln!("listening on {path}");
    serve_unix(&listener, service, queue_cap)?;
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_path: &str, _service: Arc<FleetService>, _queue_cap: usize) -> Result<(), BinError> {
    Err("--socket requires a Unix platform; use stdio mode".into())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => cli::usage_exit("ssdserve", &e),
    };
    if let Err(e) = run(&args) {
        cli::runtime_exit("ssdserve", &*e);
    }
}
