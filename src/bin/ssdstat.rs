//! Inspects an archived fleet trace: summary statistics, lifecycle tables,
//! and the observation audit — everything a site needs to sanity-check its
//! own data once it is in this tool's schema.
//!
//! ```text
//! ssdstat --trace PATH [--horizon DAYS] [--audit]
//! ```
//!
//! `PATH` may be a `.ssdfs` binary archive, a `.json` export, or a
//! directory containing `reports.csv` + `swaps.csv` (then `--horizon` is
//! required, since CSVs do not carry it).

use ssd_field_study_core::observations::{audit_trace_observations, render_checks};
use ssd_field_study_core::{characterize, lifecycle};
use ssd_types::{codec, csv, FleetTrace};
use std::io::BufReader;

struct Args {
    trace: String,
    horizon: Option<u32>,
    audit: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        trace: String::new(),
        horizon: None,
        audit: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => args.trace = it.next().expect("--trace needs a path"),
            "--horizon" => {
                args.horizon = Some(it.next().expect("--horizon needs days").parse().expect("days"))
            }
            "--audit" => args.audit = true,
            "--help" | "-h" => {
                eprintln!("usage: ssdstat --trace PATH [--horizon DAYS] [--audit]");
                std::process::exit(0);
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(!args.trace.is_empty(), "--trace is required");
    args
}

fn load(args: &Args) -> FleetTrace {
    let path = std::path::Path::new(&args.trace);
    if path.is_dir() {
        let horizon = args
            .horizon
            .expect("--horizon is required for CSV directories");
        let reports = BufReader::new(
            std::fs::File::open(path.join("reports.csv")).expect("open reports.csv"),
        );
        let swaps =
            BufReader::new(std::fs::File::open(path.join("swaps.csv")).expect("open swaps.csv"));
        return csv::read_trace_csv(reports, swaps, horizon).expect("parse csv trace");
    }
    match path.extension().and_then(|e| e.to_str()) {
        Some("json") => {
            let body = std::fs::read_to_string(path).expect("read json");
            codec::trace_from_json(&body).expect("parse json trace")
        }
        _ => {
            let bytes = std::fs::read(path).expect("read archive");
            codec::decode_trace(&bytes).expect("decode archive")
        }
    }
}

fn main() {
    let args = parse_args();
    let trace = load(&args);
    trace.validate().expect("trace invariants");

    println!("trace summary");
    println!("  drives:       {}", trace.n_drives());
    println!("  drive-days:   {}", trace.total_drive_days());
    println!("  swaps:        {}", trace.total_swaps());
    println!("  horizon:      {} days", trace.horizon_days);
    println!();
    println!("{}", lifecycle::failure_incidence(&trace).table());
    println!("{}", lifecycle::failure_count_distribution(&trace).table());
    println!("{}", characterize::error_incidence(&trace).table());

    let nop = lifecycle::non_operational_ecdf(&trace);
    if nop.n_finite() > 0 {
        println!("non-operational period: P(<=1d) {:.2}, P(<=7d) {:.2}", nop.eval(1.0), nop.eval(7.0));
    }
    let rep = lifecycle::time_to_repair_ecdf(&trace);
    println!(
        "repairs never observed to complete: {:.1}%",
        rep.censored_fraction() * 100.0
    );

    if args.audit {
        println!();
        let checks = audit_trace_observations(&trace);
        println!("{}", render_checks(&checks));
        let holds = checks.iter().filter(|c| c.holds).count();
        println!("{holds}/{} paper observations hold on this trace", checks.len());
    }
}
