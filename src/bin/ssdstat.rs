//! Inspects an archived fleet trace: summary statistics, lifecycle tables,
//! and the observation audit — everything a site needs to sanity-check its
//! own data once it is in this tool's schema.
//!
//! ```text
//! ssdstat --trace PATH [--horizon DAYS] [--audit]
//! ```
//!
//! `PATH` may be a `.ssdfs` binary archive, a `.json` export, or a
//! directory containing `reports.csv` + `swaps.csv` (then `--horizon` is
//! required, since CSVs do not carry it).
//!
//! The default report is a single streaming pass: binary archives are
//! decoded drive-by-drive through `TraceSource`, folded into a
//! `SummaryAccumulator`, and never held resident — a multi-GB archive
//! summarizes at constant memory. `--audit` additionally loads the trace
//! resident, since the observation audit is a cross-drive analysis.

#![forbid(unsafe_code)]

use ssd_field_study::cli::{self, ArgStream, BinError, UsageError};
use ssd_field_study_core::observations::{audit_trace_observations, render_checks};
use ssd_field_study_core::streaming::{StreamSummary, SummaryAccumulator};
use ssd_types::source::TraceSource;
use ssd_types::{DriveId, DriveLog, DriveModel};

const USAGE: &str = "ssdstat --trace PATH [--horizon DAYS] [--audit]";

struct Args {
    trace: String,
    horizon: Option<u32>,
    audit: bool,
}

fn parse_args() -> Result<Args, UsageError> {
    let mut args = Args {
        trace: String::new(),
        horizon: None,
        audit: false,
    };
    let mut it = ArgStream::from_env(USAGE);
    while let Some(a) = it.next_arg() {
        match a.as_str() {
            "--trace" => args.trace = it.value("--trace")?,
            "--horizon" => args.horizon = Some(it.parsed("--horizon")?),
            "--audit" => args.audit = true,
            other => return Err(it.unknown(other)),
        }
    }
    if args.trace.is_empty() {
        return Err("--trace is required".into());
    }
    Ok(args)
}

fn print_summary(s: &StreamSummary, horizon_days: u32) {
    println!("trace summary");
    println!("  drives:       {}", s.n_drives);
    println!("  drive-days:   {}", s.total_drive_days);
    println!("  swaps:        {}", s.total_swaps);
    println!("  horizon:      {} days", horizon_days);
    println!();
    println!("{}", s.failure_incidence.table());
    println!("{}", s.failure_counts.table());
    println!("{}", s.error_incidence.table());

    if s.non_operational.n_finite() > 0 {
        println!(
            "non-operational period: P(<=1d) {:.2}, P(<=7d) {:.2}",
            s.non_operational.eval(1.0),
            s.non_operational.eval(7.0)
        );
    }
    println!(
        "repairs never observed to complete: {:.1}%",
        s.time_to_repair.censored_fraction() * 100.0
    );

    // Importance-sampled archives carry per-drive log-weights: surface the
    // reweighted (population) estimates next to the raw sample tallies.
    if let Some(w) = &s.weighted {
        println!();
        println!("importance-weighted population estimates");
        println!("  effective drives:       {:.1}", w.effective_drives);
        println!("  weighted failed frac:   {:.4}", w.total_failed_fraction);
        println!("  weighted swaps/drive:   {:.4}", w.swaps_per_drive);
        for (name, failures, drives, failed_frac) in &w.per_model {
            println!(
                "  {name:<6} weighted failures {failures:>9.1} over {drives:>9.1} drives \
                 (failed frac {failed_frac:.4})"
            );
        }
    }
}

fn run(args: &Args) -> Result<(), BinError> {
    let source = TraceSource::from_path(&args.trace, args.horizon)?;

    // One streaming pass: validate and fold each drive, holding exactly
    // one drive resident for binary archives.
    let mut reader = source.open()?;
    let horizon_days = reader.horizon_days();
    let mut acc = SummaryAccumulator::new();
    let mut drive = DriveLog::new(DriveId(0), DriveModel::from_index(0));
    while reader.next_drive_into(&mut drive)? {
        drive
            .validate()
            .map_err(|e| format!("trace invariants: {e}"))?;
        acc.observe(&drive);
    }
    print_summary(&acc.finish(), horizon_days);

    if args.audit {
        println!();
        // The audit compares distributions across drives, so it needs the
        // whole trace resident.
        let trace = source.load()?;
        let checks = audit_trace_observations(&trace);
        println!("{}", render_checks(&checks));
        let holds = checks.iter().filter(|c| c.holds).count();
        println!("{holds}/{} paper observations hold on this trace", checks.len());
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => cli::usage_exit("ssdstat", &e),
    };
    if let Err(e) = run(&args) {
        cli::runtime_exit("ssdstat", &*e);
    }
}
