//! Shared command-line plumbing for the workspace binaries.
//!
//! The five binaries (`ssdgen`, `ssdstat`, `ssdpredict`, `ssdserve`,
//! `repro`) parse flags through one [`ArgStream`] so the surface stays
//! uniform: `--seed S`, `--drives N`, `--years Y` / `--days D`,
//! `--out DIR`, `--trace PATH` are spelled and diagnosed the same way
//! everywhere. Exit codes are consistent across the suite:
//!
//! * `0` — success, or `--help`/`-h` (usage printed to stderr);
//! * `1` — runtime failure (I/O, decode, invalid trace), reported as
//!   `{bin}: {error}` via [`runtime_exit`];
//! * `2` — bad invocation (unknown flag, missing or unparsable value),
//!   a typed [`UsageError`] reported via [`usage_exit`].

use std::fmt;

/// Boxed error type shared by all binaries' run paths.
pub type BinError = Box<dyn std::error::Error>;

/// Days per `--years` unit: the paper's trace spans six 365-day years.
pub const DAYS_PER_YEAR: u32 = 365;

/// A bad invocation: unknown flag, missing value, unparsable value, or a
/// missing required flag. Reported as `{bin}: {message}`, exit code 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

impl From<String> for UsageError {
    fn from(msg: String) -> Self {
        UsageError(msg)
    }
}

impl From<&str> for UsageError {
    fn from(msg: &str) -> Self {
        UsageError(msg.to_string())
    }
}

/// Iterator over command-line arguments with uniform flag-value handling.
///
/// `--help` / `-h` are intercepted in [`next_arg`](ArgStream::next_arg):
/// the usage line prints to stderr and the process exits 0, so individual
/// binaries never repeat that logic.
pub struct ArgStream {
    args: std::vec::IntoIter<String>,
    usage: &'static str,
}

impl ArgStream {
    /// Wraps `std::env::args()` (program name skipped) with the binary's
    /// one-line usage string.
    pub fn from_env(usage: &'static str) -> Self {
        ArgStream {
            args: std::env::args().skip(1).collect::<Vec<_>>().into_iter(),
            usage,
        }
    }

    /// Builds a stream over explicit arguments (tests).
    #[cfg(test)]
    pub fn from_args(args: Vec<String>, usage: &'static str) -> Self {
        ArgStream {
            args: args.into_iter(),
            usage,
        }
    }

    /// Returns the next raw argument. On `--help`/`-h`, prints the usage
    /// line and exits 0.
    pub fn next_arg(&mut self) -> Option<String> {
        let a = self.args.next()?;
        if a == "--help" || a == "-h" {
            eprintln!("usage: {}", self.usage);
            std::process::exit(0);
        }
        Some(a)
    }

    /// Consumes the value of `flag`, failing with a typed usage error if
    /// the command line ends first.
    pub fn value(&mut self, flag: &str) -> Result<String, UsageError> {
        self.args
            .next()
            .ok_or_else(|| UsageError(format!("{flag} needs a value")))
    }

    /// Consumes and parses the value of `flag`; parse failures become
    /// `"{flag}: {error}"` usage errors.
    pub fn parsed<T>(&mut self, flag: &str) -> Result<T, UsageError>
    where
        T: std::str::FromStr,
        T::Err: fmt::Display,
    {
        self.value(flag)?
            .parse()
            .map_err(|e| UsageError(format!("{flag}: {e}")))
    }

    /// The typed error for an argument no branch claimed.
    pub fn unknown(&self, arg: &str) -> UsageError {
        UsageError(format!("unknown argument {arg}"))
    }
}

/// Reports a bad invocation as `{bin}: {error}` and exits 2.
pub fn usage_exit(bin: &str, e: &UsageError) -> ! {
    eprintln!("{bin}: {e}");
    std::process::exit(2);
}

/// Reports a runtime failure as `{bin}: {error}` and exits 1.
pub fn runtime_exit(bin: &str, e: &dyn std::error::Error) -> ! {
    eprintln!("{bin}: {e}");
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(args: &[&str]) -> ArgStream {
        ArgStream::from_args(args.iter().map(|s| s.to_string()).collect(), "test")
    }

    #[test]
    fn value_extraction_and_exhaustion() {
        let mut s = stream(&["--seed", "42"]);
        assert_eq!(s.next_arg().as_deref(), Some("--seed"));
        assert_eq!(s.value("--seed").unwrap(), "42");
        assert_eq!(s.next_arg(), None);

        let mut s = stream(&["--seed"]);
        s.next_arg();
        assert_eq!(s.value("--seed").unwrap_err().0, "--seed needs a value");
    }

    #[test]
    fn parsed_values_and_typed_parse_errors() {
        let mut s = stream(&["--drives", "120", "--days", "x"]);
        s.next_arg();
        assert_eq!(s.parsed::<u32>("--drives").unwrap(), 120);
        s.next_arg();
        let err = s.parsed::<u32>("--days").unwrap_err();
        assert!(err.0.starts_with("--days: "), "{err}");
    }

    #[test]
    fn unknown_argument_message_is_stable() {
        let s = stream(&[]);
        assert_eq!(s.unknown("--bogus").0, "unknown argument --bogus");
    }
}
