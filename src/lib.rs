//! Umbrella crate re-exporting the whole `ssd-field-study` workspace.

#![forbid(unsafe_code)]

pub mod cli;

pub use ssd_field_study_core as core;
pub use ssd_ml as ml;
pub use ssd_parallel as parallel;
pub use ssd_sim as sim;
pub use ssd_stats as stats;
pub use ssd_types as types;
