//! End-to-end smoke tests for the three binaries on a tiny fleet
//! (7 drives/model × 3 models ≈ 20 drives over 120 days). Each test drives
//! the compiled binary through `CARGO_BIN_EXE_*` the way a user would, then
//! checks the artifacts with the library entry points.

use ssd_types::{codec, json};
use std::path::PathBuf;
use std::process::Command;

const DRIVES_PER_MODEL: &str = "7";
const DAYS: &str = "120";
const SEED: &str = "99";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssd_bin_smoke_{}_{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    let out = Command::new(bin).args(args).output().expect("spawn binary");
    assert!(
        out.status.success(),
        "{bin} {args:?} failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn gen_trace(dir: &std::path::Path, format: &str) {
    run(
        env!("CARGO_BIN_EXE_ssdgen"),
        &[
            "--out",
            dir.to_str().unwrap(),
            "--drives",
            DRIVES_PER_MODEL,
            "--days",
            DAYS,
            "--seed",
            SEED,
            "--format",
            format,
        ],
    );
}

#[test]
fn ssdgen_bin_archive_decodes_and_validates() {
    let dir = scratch("gen_bin");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let trace = codec::decode_trace(&bytes).expect("decode archive");
    trace.validate().expect("trace invariants");
    assert_eq!(trace.horizon_days, 120);
    assert_eq!(trace.n_drives(), 21, "7 drives for each of 3 models");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdgen_formats_agree_on_the_same_seed() {
    let bin_dir = scratch("gen_agree_bin");
    let json_dir = scratch("gen_agree_json");
    gen_trace(&bin_dir, "bin");
    gen_trace(&json_dir, "json");
    let bytes = std::fs::read(bin_dir.join("trace.ssdfs")).expect("read archive");
    let from_bin = codec::decode_trace(&bytes).expect("decode archive");
    let body = std::fs::read_to_string(json_dir.join("trace.json")).expect("read json");
    let from_json = codec::trace_from_json(&body).expect("parse json trace");
    assert_eq!(from_bin, from_json, "bin and json exports must carry the same trace");
    std::fs::remove_dir_all(&bin_dir).ok();
    std::fs::remove_dir_all(&json_dir).ok();
}

#[test]
fn ssdstat_reads_binary_archive_and_audits() {
    let dir = scratch("stat_bin");
    gen_trace(&dir, "bin");
    let trace_path = dir.join("trace.ssdfs");
    let out = run(
        env!("CARGO_BIN_EXE_ssdstat"),
        &["--trace", trace_path.to_str().unwrap(), "--audit"],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace summary"), "missing summary:\n{stdout}");
    assert!(stdout.contains("drives:       21"), "wrong drive count:\n{stdout}");
    assert!(
        stdout.contains("paper observations hold on this trace"),
        "missing audit tail:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_reads_csv_directory_with_horizon() {
    let dir = scratch("stat_csv");
    gen_trace(&dir, "csv");
    assert!(dir.join("reports.csv").is_file());
    assert!(dir.join("swaps.csv").is_file());
    let out = run(
        env!("CARGO_BIN_EXE_ssdstat"),
        &["--trace", dir.to_str().unwrap(), "--horizon", DAYS],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("horizon:      120 days"), "wrong horizon:\n{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_runs_cheap_experiments_and_writes_parseable_json() {
    let dir = scratch("repro");
    let out = run(
        env!("CARGO_BIN_EXE_repro"),
        &[
            "--scale",
            "test",
            "--seed",
            SEED,
            "--json",
            dir.to_str().unwrap(),
            "fig1",
            "tab3",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("=== fig1 ==="), "fig1 did not run:\n{stdout}");
    assert!(stdout.contains("=== tab3 ==="), "tab3 did not run:\n{stdout}");
    for id in ["fig1", "tab3"] {
        let body = std::fs::read_to_string(dir.join(format!("{id}.json")))
            .unwrap_or_else(|e| panic!("read {id}.json: {e}"));
        let value = json::parse(&body).unwrap_or_else(|e| panic!("parse {id}.json: {e}"));
        assert!(
            matches!(value, json::Value::Obj(_)),
            "{id}.json should be a JSON object"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_unknown_scale() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "bogus"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success(), "bogus scale must fail");
}

#[test]
fn repro_runs_experiments_from_an_archived_trace() {
    let dir = scratch("repro_trace");
    gen_trace(&dir, "bin");
    let trace_path = dir.join("trace.ssdfs");
    let out = run(
        env!("CARGO_BIN_EXE_repro"),
        &["--trace", trace_path.to_str().unwrap(), "--scale", "test", "tab3"],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("=== tab3 ==="), "tab3 did not run:\n{stdout}");
    assert!(stderr.contains("loaded"), "should load, not simulate:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_rejects_truncated_archive_with_nonzero_exit() {
    let dir = scratch("stat_truncated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let cut_path = dir.join("truncated.ssdfs");
    std::fs::write(&cut_path, &bytes[..bytes.len() / 2]).expect("write truncated");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdstat"))
        .args(["--trace", cut_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdstat");
    assert!(!out.status.success(), "truncated archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unexpected end of input at byte"),
        "error should name the truncation offset:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_rejects_corrupt_archive_with_nonzero_exit() {
    let dir = scratch("stat_corrupt");
    std::fs::create_dir_all(&dir).ok();
    let bad_path = dir.join("corrupt.ssdfs");
    std::fs::write(&bad_path, b"this is not an archive at all").expect("write corrupt");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdstat"))
        .args(["--trace", bad_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdstat");
    assert!(!out.status.success(), "corrupt archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad magic"),
        "error should report the bad header:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_truncated_archive_with_nonzero_exit() {
    let dir = scratch("repro_truncated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let cut_path = dir.join("truncated.ssdfs");
    std::fs::write(&cut_path, &bytes[..bytes.len() - 7]).expect("write truncated");

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--trace", cut_path.to_str().unwrap(), "tab3"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success(), "truncated archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("repro:"),
        "error should be reported with the bin name:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_reports_missing_file_path_in_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_ssdstat"))
        .args(["--trace", "/no/such/trace.ssdfs"])
        .output()
        .expect("spawn ssdstat");
    assert!(!out.status.success(), "missing file must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("/no/such/trace.ssdfs"),
        "error should name the path:\n{stderr}"
    );
}
