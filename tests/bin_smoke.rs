//! End-to-end smoke tests for the three binaries on a tiny fleet
//! (7 drives/model × 3 models ≈ 20 drives over 120 days). Each test drives
//! the compiled binary through `CARGO_BIN_EXE_*` the way a user would, then
//! checks the artifacts with the library entry points.

use ssd_types::{codec, json};
use std::path::PathBuf;
use std::process::Command;

const DRIVES_PER_MODEL: &str = "7";
const DAYS: &str = "120";
const SEED: &str = "99";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssd_bin_smoke_{}_{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    let out = Command::new(bin).args(args).output().expect("spawn binary");
    assert!(
        out.status.success(),
        "{bin} {args:?} failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn gen_trace(dir: &std::path::Path, format: &str) {
    run(
        env!("CARGO_BIN_EXE_ssdgen"),
        &[
            "--out",
            dir.to_str().unwrap(),
            "--drives",
            DRIVES_PER_MODEL,
            "--days",
            DAYS,
            "--seed",
            SEED,
            "--format",
            format,
        ],
    );
}

#[test]
fn ssdgen_bin_archive_decodes_and_validates() {
    let dir = scratch("gen_bin");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let trace = codec::decode_trace(&bytes).expect("decode archive");
    trace.validate().expect("trace invariants");
    assert_eq!(trace.horizon_days, 120);
    assert_eq!(trace.n_drives(), 21, "7 drives for each of 3 models");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdgen_formats_agree_on_the_same_seed() {
    let bin_dir = scratch("gen_agree_bin");
    let json_dir = scratch("gen_agree_json");
    gen_trace(&bin_dir, "bin");
    gen_trace(&json_dir, "json");
    let bytes = std::fs::read(bin_dir.join("trace.ssdfs")).expect("read archive");
    let from_bin = codec::decode_trace(&bytes).expect("decode archive");
    let body = std::fs::read_to_string(json_dir.join("trace.json")).expect("read json");
    let from_json = codec::trace_from_json(&body).expect("parse json trace");
    assert_eq!(from_bin, from_json, "bin and json exports must carry the same trace");
    std::fs::remove_dir_all(&bin_dir).ok();
    std::fs::remove_dir_all(&json_dir).ok();
}

#[test]
fn ssdstat_reads_binary_archive_and_audits() {
    let dir = scratch("stat_bin");
    gen_trace(&dir, "bin");
    let trace_path = dir.join("trace.ssdfs");
    let out = run(
        env!("CARGO_BIN_EXE_ssdstat"),
        &["--trace", trace_path.to_str().unwrap(), "--audit"],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace summary"), "missing summary:\n{stdout}");
    assert!(stdout.contains("drives:       21"), "wrong drive count:\n{stdout}");
    assert!(
        stdout.contains("paper observations hold on this trace"),
        "missing audit tail:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_reads_csv_directory_with_horizon() {
    let dir = scratch("stat_csv");
    gen_trace(&dir, "csv");
    assert!(dir.join("reports.csv").is_file());
    assert!(dir.join("swaps.csv").is_file());
    let out = run(
        env!("CARGO_BIN_EXE_ssdstat"),
        &["--trace", dir.to_str().unwrap(), "--horizon", DAYS],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("horizon:      120 days"), "wrong horizon:\n{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_runs_cheap_experiments_and_writes_parseable_json() {
    let dir = scratch("repro");
    let out = run(
        env!("CARGO_BIN_EXE_repro"),
        &[
            "--scale",
            "test",
            "--seed",
            SEED,
            "--json",
            dir.to_str().unwrap(),
            "fig1",
            "tab3",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("=== fig1 ==="), "fig1 did not run:\n{stdout}");
    assert!(stdout.contains("=== tab3 ==="), "tab3 did not run:\n{stdout}");
    for id in ["fig1", "tab3"] {
        let body = std::fs::read_to_string(dir.join(format!("{id}.json")))
            .unwrap_or_else(|e| panic!("read {id}.json: {e}"));
        let value = json::parse(&body).unwrap_or_else(|e| panic!("parse {id}.json: {e}"));
        assert!(
            matches!(value, json::Value::Obj(_)),
            "{id}.json should be a JSON object"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_unknown_scale() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "bogus"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success(), "bogus scale must fail");
}

#[test]
fn repro_runs_experiments_from_an_archived_trace() {
    let dir = scratch("repro_trace");
    gen_trace(&dir, "bin");
    let trace_path = dir.join("trace.ssdfs");
    let out = run(
        env!("CARGO_BIN_EXE_repro"),
        &["--trace", trace_path.to_str().unwrap(), "--scale", "test", "tab3"],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("=== tab3 ==="), "tab3 did not run:\n{stdout}");
    assert!(stderr.contains("loaded"), "should load, not simulate:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_rejects_truncated_archive_with_nonzero_exit() {
    let dir = scratch("stat_truncated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let cut_path = dir.join("truncated.ssdfs");
    std::fs::write(&cut_path, &bytes[..bytes.len() / 2]).expect("write truncated");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdstat"))
        .args(["--trace", cut_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdstat");
    assert!(!out.status.success(), "truncated archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unexpected end of input at byte"),
        "error should name the truncation offset:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_rejects_corrupt_archive_with_nonzero_exit() {
    let dir = scratch("stat_corrupt");
    std::fs::create_dir_all(&dir).ok();
    let bad_path = dir.join("corrupt.ssdfs");
    std::fs::write(&bad_path, b"this is not an archive at all").expect("write corrupt");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdstat"))
        .args(["--trace", bad_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdstat");
    assert!(!out.status.success(), "corrupt archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad magic"),
        "error should report the bad header:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_truncated_archive_with_nonzero_exit() {
    let dir = scratch("repro_truncated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let cut_path = dir.join("truncated.ssdfs");
    std::fs::write(&cut_path, &bytes[..bytes.len() - 7]).expect("write truncated");

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--trace", cut_path.to_str().unwrap(), "tab3"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success(), "truncated archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("repro:"),
        "error should be reported with the bin name:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_reports_missing_file_path_in_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_ssdstat"))
        .args(["--trace", "/no/such/trace.ssdfs"])
        .output()
        .expect("spawn ssdstat");
    assert!(!out.status.success(), "missing file must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("/no/such/trace.ssdfs"),
        "error should name the path:\n{stderr}"
    );
}

/// ssdpredict needs a trace with actual failures to train on; the shared
/// 7-drive/120-day fleet has none, so these tests generate a larger one.
fn gen_predict_trace(dir: &std::path::Path) {
    run(
        env!("CARGO_BIN_EXE_ssdgen"),
        &[
            "--out",
            dir.to_str().unwrap(),
            "--drives",
            "40",
            "--days",
            "800",
            "--seed",
            "11",
            "--format",
            "bin",
        ],
    );
}

#[test]
fn ssdpredict_ranks_fleet_from_binary_archive() {
    let dir = scratch("predict_bin");
    gen_predict_trace(&dir);
    let out = run(
        env!("CARGO_BIN_EXE_ssdpredict"),
        &[
            "--trace",
            dir.join("trace.ssdfs").to_str().unwrap(),
            "--lookahead",
            "14",
            "--sample-rate",
            "0.5",
            "--seed",
            "7",
            "--trees",
            "10",
            "--top",
            "5",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trained Flat Random Forest"), "missing train line:\n{stderr}");
    assert!(stdout.contains("fleet risk (swap within 14 days)"), "missing header:\n{stdout}");
    assert!(stdout.contains("top 5 drives by current-day risk"), "missing ranking:\n{stdout}");
    // Scores are probabilities printed to 4 places; the header block
    // reports the fleet size that actually reported telemetry.
    assert!(stdout.contains("drives:      66"), "wrong fleet size:\n{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_gbdt_model_runs_on_the_same_archive() {
    let dir = scratch("predict_gbdt");
    gen_predict_trace(&dir);
    let out = run(
        env!("CARGO_BIN_EXE_ssdpredict"),
        &[
            "--trace",
            dir.join("trace.ssdfs").to_str().unwrap(),
            "--model",
            "gbdt",
            "--lookahead",
            "14",
            "--sample-rate",
            "0.5",
            "--trees",
            "10",
        ],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trained Flat GBDT"), "missing train line:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_reports_single_class_traces_with_typed_error() {
    // The shared tiny fleet produces no swaps, so training must fail
    // with the class-balance diagnostic, not a panic or a zero ranking.
    let dir = scratch("predict_single_class");
    gen_trace(&dir, "bin");
    let out = Command::new(env!("CARGO_BIN_EXE_ssdpredict"))
        .args(["--trace", dir.join("trace.ssdfs").to_str().unwrap()])
        .output()
        .expect("spawn ssdpredict");
    assert!(!out.status.success(), "single-class trace must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ssdpredict:") && stderr.contains("needs both classes"),
        "error should explain the class imbalance:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_rejects_truncated_archive_with_nonzero_exit() {
    let dir = scratch("predict_truncated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let cut_path = dir.join("truncated.ssdfs");
    std::fs::write(&cut_path, &bytes[..bytes.len() * 2 / 3]).expect("write truncated");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdpredict"))
        .args(["--trace", cut_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdpredict");
    assert!(!out.status.success(), "truncated archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ssdpredict:") && stderr.contains("unexpected end of input"),
        "error should name the truncation:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_rejects_corrupt_archive_with_nonzero_exit() {
    let dir = scratch("predict_corrupt");
    std::fs::create_dir_all(&dir).ok();
    let bad_path = dir.join("corrupt.ssdfs");
    std::fs::write(&bad_path, b"definitely not a trace archive").expect("write corrupt");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdpredict"))
        .args(["--trace", bad_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdpredict");
    assert!(!out.status.success(), "corrupt archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad magic"), "error should report the bad header:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_never_panics_on_byte_mutated_archives() {
    // Flip bytes at spread-out offsets: whatever the decoder makes of the
    // damage, the process must exit via the typed error path (or clean
    // success if the flip landed somewhere inert) — never a panic, never
    // a signal.
    let dir = scratch("predict_mutated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    for (i, stride) in [(1usize, 97usize), (2, 251), (3, 509), (4, 1021)] {
        let mut mutated = bytes.clone();
        let mut at = 8 + i; // past the magic so the decoder engages
        while at < mutated.len() {
            mutated[at] ^= 0x55;
            at += stride;
        }
        let mut_path = dir.join(format!("mutated_{i}.ssdfs"));
        std::fs::write(&mut_path, &mutated).expect("write mutated");
        let out = Command::new(env!("CARGO_BIN_EXE_ssdpredict"))
            .args(["--trace", mut_path.to_str().unwrap()])
            .output()
            .expect("spawn ssdpredict");
        assert!(
            out.status.code().is_some(),
            "mutation {i}: killed by signal instead of exiting"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.contains("panicked"), "mutation {i} panicked:\n{stderr}");
        if !out.status.success() {
            assert!(
                stderr.contains("ssdpredict:"),
                "mutation {i}: failure must go through the typed error path:\n{stderr}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
