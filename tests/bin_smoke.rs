//! End-to-end smoke tests for the three binaries on a tiny fleet
//! (7 drives/model × 3 models ≈ 20 drives over 120 days). Each test drives
//! the compiled binary through `CARGO_BIN_EXE_*` the way a user would, then
//! checks the artifacts with the library entry points.

use ssd_types::{codec, json};
use std::path::PathBuf;
use std::process::Command;

const DRIVES_PER_MODEL: &str = "7";
const DAYS: &str = "120";
const SEED: &str = "99";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssd_bin_smoke_{}_{name}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run(bin: &str, args: &[&str]) -> std::process::Output {
    let out = Command::new(bin).args(args).output().expect("spawn binary");
    assert!(
        out.status.success(),
        "{bin} {args:?} failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn gen_trace(dir: &std::path::Path, format: &str) {
    run(
        env!("CARGO_BIN_EXE_ssdgen"),
        &[
            "--out",
            dir.to_str().unwrap(),
            "--drives",
            DRIVES_PER_MODEL,
            "--days",
            DAYS,
            "--seed",
            SEED,
            "--format",
            format,
        ],
    );
}

#[test]
fn ssdgen_bin_archive_decodes_and_validates() {
    let dir = scratch("gen_bin");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let trace = codec::decode_trace(&bytes).expect("decode archive");
    trace.validate().expect("trace invariants");
    assert_eq!(trace.horizon_days, 120);
    assert_eq!(trace.n_drives(), 21, "7 drives for each of 3 models");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdgen_formats_agree_on_the_same_seed() {
    let bin_dir = scratch("gen_agree_bin");
    let json_dir = scratch("gen_agree_json");
    gen_trace(&bin_dir, "bin");
    gen_trace(&json_dir, "json");
    let bytes = std::fs::read(bin_dir.join("trace.ssdfs")).expect("read archive");
    let from_bin = codec::decode_trace(&bytes).expect("decode archive");
    let body = std::fs::read_to_string(json_dir.join("trace.json")).expect("read json");
    let from_json = codec::trace_from_json(&body).expect("parse json trace");
    assert_eq!(from_bin, from_json, "bin and json exports must carry the same trace");
    std::fs::remove_dir_all(&bin_dir).ok();
    std::fs::remove_dir_all(&json_dir).ok();
}

#[test]
fn ssdstat_reads_binary_archive_and_audits() {
    let dir = scratch("stat_bin");
    gen_trace(&dir, "bin");
    let trace_path = dir.join("trace.ssdfs");
    let out = run(
        env!("CARGO_BIN_EXE_ssdstat"),
        &["--trace", trace_path.to_str().unwrap(), "--audit"],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("trace summary"), "missing summary:\n{stdout}");
    assert!(stdout.contains("drives:       21"), "wrong drive count:\n{stdout}");
    assert!(
        stdout.contains("paper observations hold on this trace"),
        "missing audit tail:\n{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_reads_csv_directory_with_horizon() {
    let dir = scratch("stat_csv");
    gen_trace(&dir, "csv");
    assert!(dir.join("reports.csv").is_file());
    assert!(dir.join("swaps.csv").is_file());
    let out = run(
        env!("CARGO_BIN_EXE_ssdstat"),
        &["--trace", dir.to_str().unwrap(), "--horizon", DAYS],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("horizon:      120 days"), "wrong horizon:\n{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_runs_cheap_experiments_and_writes_parseable_json() {
    let dir = scratch("repro");
    let out = run(
        env!("CARGO_BIN_EXE_repro"),
        &[
            "--scale",
            "test",
            "--seed",
            SEED,
            "--json",
            dir.to_str().unwrap(),
            "fig1",
            "tab3",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("=== fig1 ==="), "fig1 did not run:\n{stdout}");
    assert!(stdout.contains("=== tab3 ==="), "tab3 did not run:\n{stdout}");
    for id in ["fig1", "tab3"] {
        let body = std::fs::read_to_string(dir.join(format!("{id}.json")))
            .unwrap_or_else(|e| panic!("read {id}.json: {e}"));
        let value = json::parse(&body).unwrap_or_else(|e| panic!("parse {id}.json: {e}"));
        assert!(
            matches!(value, json::Value::Obj(_)),
            "{id}.json should be a JSON object"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_unknown_scale() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--scale", "bogus"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success(), "bogus scale must fail");
}

#[test]
fn repro_runs_experiments_from_an_archived_trace() {
    let dir = scratch("repro_trace");
    gen_trace(&dir, "bin");
    let trace_path = dir.join("trace.ssdfs");
    let out = run(
        env!("CARGO_BIN_EXE_repro"),
        &["--trace", trace_path.to_str().unwrap(), "--scale", "test", "tab3"],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("=== tab3 ==="), "tab3 did not run:\n{stdout}");
    assert!(stderr.contains("loaded"), "should load, not simulate:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_rejects_truncated_archive_with_nonzero_exit() {
    let dir = scratch("stat_truncated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let cut_path = dir.join("truncated.ssdfs");
    std::fs::write(&cut_path, &bytes[..bytes.len() / 2]).expect("write truncated");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdstat"))
        .args(["--trace", cut_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdstat");
    assert!(!out.status.success(), "truncated archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unexpected end of input at byte"),
        "error should name the truncation offset:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_rejects_corrupt_archive_with_nonzero_exit() {
    let dir = scratch("stat_corrupt");
    std::fs::create_dir_all(&dir).ok();
    let bad_path = dir.join("corrupt.ssdfs");
    std::fs::write(&bad_path, b"this is not an archive at all").expect("write corrupt");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdstat"))
        .args(["--trace", bad_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdstat");
    assert!(!out.status.success(), "corrupt archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bad magic"),
        "error should report the bad header:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_rejects_truncated_archive_with_nonzero_exit() {
    let dir = scratch("repro_truncated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let cut_path = dir.join("truncated.ssdfs");
    std::fs::write(&cut_path, &bytes[..bytes.len() - 7]).expect("write truncated");

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--trace", cut_path.to_str().unwrap(), "tab3"])
        .output()
        .expect("spawn repro");
    assert!(!out.status.success(), "truncated archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("repro:"),
        "error should be reported with the bin name:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdstat_reports_missing_file_path_in_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_ssdstat"))
        .args(["--trace", "/no/such/trace.ssdfs"])
        .output()
        .expect("spawn ssdstat");
    assert!(!out.status.success(), "missing file must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("/no/such/trace.ssdfs"),
        "error should name the path:\n{stderr}"
    );
}

/// ssdpredict needs a trace with actual failures to train on; the shared
/// 7-drive/120-day fleet has none, so these tests generate a larger one.
fn gen_predict_trace(dir: &std::path::Path) {
    run(
        env!("CARGO_BIN_EXE_ssdgen"),
        &[
            "--out",
            dir.to_str().unwrap(),
            "--drives",
            "40",
            "--days",
            "800",
            "--seed",
            "11",
            "--format",
            "bin",
        ],
    );
}

#[test]
fn ssdpredict_ranks_fleet_from_binary_archive() {
    let dir = scratch("predict_bin");
    gen_predict_trace(&dir);
    let out = run(
        env!("CARGO_BIN_EXE_ssdpredict"),
        &[
            "--trace",
            dir.join("trace.ssdfs").to_str().unwrap(),
            "--lookahead",
            "14",
            "--sample-rate",
            "0.5",
            "--seed",
            "7",
            "--trees",
            "10",
            "--top",
            "5",
        ],
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trained Flat Random Forest"), "missing train line:\n{stderr}");
    assert!(stdout.contains("fleet risk (swap within 14 days)"), "missing header:\n{stdout}");
    assert!(stdout.contains("top 5 drives by current-day risk"), "missing ranking:\n{stdout}");
    // Scores are probabilities printed to 4 places; the header block
    // reports the fleet size that actually reported telemetry.
    assert!(stdout.contains("drives:      66"), "wrong fleet size:\n{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_gbdt_model_runs_on_the_same_archive() {
    let dir = scratch("predict_gbdt");
    gen_predict_trace(&dir);
    let out = run(
        env!("CARGO_BIN_EXE_ssdpredict"),
        &[
            "--trace",
            dir.join("trace.ssdfs").to_str().unwrap(),
            "--model",
            "gbdt",
            "--lookahead",
            "14",
            "--sample-rate",
            "0.5",
            "--trees",
            "10",
        ],
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("trained Flat GBDT"), "missing train line:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_reports_single_class_traces_with_typed_error() {
    // The shared tiny fleet produces no swaps, so training must fail
    // with the class-balance diagnostic, not a panic or a zero ranking.
    let dir = scratch("predict_single_class");
    gen_trace(&dir, "bin");
    let out = Command::new(env!("CARGO_BIN_EXE_ssdpredict"))
        .args(["--trace", dir.join("trace.ssdfs").to_str().unwrap()])
        .output()
        .expect("spawn ssdpredict");
    assert!(!out.status.success(), "single-class trace must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ssdpredict:") && stderr.contains("needs both classes"),
        "error should explain the class imbalance:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_rejects_truncated_archive_with_nonzero_exit() {
    let dir = scratch("predict_truncated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    let cut_path = dir.join("truncated.ssdfs");
    std::fs::write(&cut_path, &bytes[..bytes.len() * 2 / 3]).expect("write truncated");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdpredict"))
        .args(["--trace", cut_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdpredict");
    assert!(!out.status.success(), "truncated archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("ssdpredict:") && stderr.contains("unexpected end of input"),
        "error should name the truncation:\n{stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_rejects_corrupt_archive_with_nonzero_exit() {
    let dir = scratch("predict_corrupt");
    std::fs::create_dir_all(&dir).ok();
    let bad_path = dir.join("corrupt.ssdfs");
    std::fs::write(&bad_path, b"definitely not a trace archive").expect("write corrupt");

    let out = Command::new(env!("CARGO_BIN_EXE_ssdpredict"))
        .args(["--trace", bad_path.to_str().unwrap()])
        .output()
        .expect("spawn ssdpredict");
    assert!(!out.status.success(), "corrupt archive must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bad magic"), "error should report the bad header:\n{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdpredict_never_panics_on_byte_mutated_archives() {
    // Flip bytes at spread-out offsets: whatever the decoder makes of the
    // damage, the process must exit via the typed error path (or clean
    // success if the flip landed somewhere inert) — never a panic, never
    // a signal.
    let dir = scratch("predict_mutated");
    gen_trace(&dir, "bin");
    let bytes = std::fs::read(dir.join("trace.ssdfs")).expect("read archive");
    for (i, stride) in [(1usize, 97usize), (2, 251), (3, 509), (4, 1021)] {
        let mut mutated = bytes.clone();
        let mut at = 8 + i; // past the magic so the decoder engages
        while at < mutated.len() {
            mutated[at] ^= 0x55;
            at += stride;
        }
        let mut_path = dir.join(format!("mutated_{i}.ssdfs"));
        std::fs::write(&mut_path, &mutated).expect("write mutated");
        let out = Command::new(env!("CARGO_BIN_EXE_ssdpredict"))
            .args(["--trace", mut_path.to_str().unwrap()])
            .output()
            .expect("spawn ssdpredict");
        assert!(
            out.status.code().is_some(),
            "mutation {i}: killed by signal instead of exiting"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(!stderr.contains("panicked"), "mutation {i} panicked:\n{stderr}");
        if !out.status.success() {
            assert!(
                stderr.contains("ssdpredict:"),
                "mutation {i}: failure must go through the typed error path:\n{stderr}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Builds one length-prefixed request frame.
fn serve_frame(body: &[u8]) -> Vec<u8> {
    let mut f = (body.len() as u32).to_le_bytes().to_vec();
    f.extend_from_slice(body);
    f
}

/// Splits a response stream back into frame bodies.
fn serve_split(mut bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    while bytes.len() >= 4 {
        let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
        frames.push(bytes[4..4 + len].to_vec());
        bytes = &bytes[4 + len..];
    }
    assert!(bytes.is_empty(), "trailing partial frame");
    frames
}

fn run_ssdserve(trace: &std::path::Path, extra: &[&str], input: &[u8]) -> std::process::Output {
    use std::io::Write;
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ssdserve"));
    cmd.args(["--trace", trace.to_str().unwrap()])
        .args(extra)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped());
    let mut child = cmd.spawn().expect("spawn ssdserve");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input)
        .expect("write requests");
    child.wait_with_output().expect("collect ssdserve output")
}

#[test]
fn ssdserve_answers_queries_over_stdio() {
    let dir = scratch("serve_stdio");
    gen_predict_trace(&dir);
    let mut input = Vec::new();
    input.extend(serve_frame(br#"{"q":"info"}"#));
    input.extend(serve_frame(br#"[{"q":"summary"},{"q":"topk","k":3}]"#));
    let out = run_ssdserve(
        &dir.join("trace.ssdfs"),
        &["--shards", "3", "--lookahead", "14", "--sample-rate", "0.5", "--trees", "8", "--seed", "7"],
        &input,
    );
    assert!(out.status.success(), "stderr:\n{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ready:"), "missing ready line:\n{stderr}");
    let frames = serve_split(&out.stdout);
    assert_eq!(frames.len(), 2, "one response frame per request frame");
    let info = json::parse(std::str::from_utf8(&frames[0]).unwrap()).expect("info json");
    assert_eq!(
        info.get("shards").and_then(json::Value::as_u64),
        Some(3),
        "info must echo the shard count"
    );
    let batch = json::parse(std::str::from_utf8(&frames[1]).unwrap()).expect("batch json");
    let json::Value::Arr(items) = batch else {
        panic!("array frame must get an array response")
    };
    assert_eq!(items.len(), 2);
    assert!(items[0].get("drives").is_some(), "summary answer");
    assert!(items[1].get("drives").is_some(), "topk answer");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdserve_rejects_malformed_frames_with_typed_error_and_nonzero_exit() {
    let dir = scratch("serve_malformed");
    gen_trace(&dir, "bin");
    let mut input = serve_frame(br#"{"q":"info"}"#);
    input.extend(serve_frame(b"{this is not json"));
    let out = run_ssdserve(&dir.join("trace.ssdfs"), &["--model", "none"], &input);
    assert!(!out.status.success(), "malformed frame must exit nonzero");
    let frames = serve_split(&out.stdout);
    assert_eq!(frames.len(), 2, "info answer then error frame");
    let err = json::parse(std::str::from_utf8(&frames[1]).unwrap()).expect("error json");
    assert_eq!(
        err.get("err")
            .and_then(|e| e.get("kind"))
            .and_then(json::Value::as_str),
        Some("invalid-json")
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn ssdserve_serves_concurrent_unix_socket_clients() {
    use std::io::{Read, Write};
    use std::os::unix::net::UnixStream;

    let dir = scratch("serve_socket");
    gen_trace(&dir, "bin");
    let sock = dir.join("ssdserve.sock");
    let mut child = Command::new(env!("CARGO_BIN_EXE_ssdserve"))
        .args([
            "--trace",
            dir.join("trace.ssdfs").to_str().unwrap(),
            "--model",
            "none",
            "--shards",
            "2",
            "--socket",
            sock.to_str().unwrap(),
        ])
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn ssdserve");
    // Wait for the socket to appear (startup trains nothing here).
    let mut waited = 0;
    while !sock.exists() && waited < 100 {
        std::thread::sleep(std::time::Duration::from_millis(100));
        waited += 1;
    }
    assert!(sock.exists(), "socket never appeared");

    let ask = |body: &[u8]| -> Vec<u8> {
        let mut stream = UnixStream::connect(&sock).expect("connect");
        stream.write_all(&serve_frame(body)).expect("send");
        stream.shutdown(std::net::Shutdown::Write).expect("half-close");
        let mut reply = Vec::new();
        stream.read_to_end(&mut reply).expect("receive");
        let frames = serve_split(&reply);
        assert_eq!(frames.len(), 1);
        frames.into_iter().next().unwrap()
    };

    let solo = ask(br#"{"q":"summary"}"#);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let sockpath = sock.clone();
        handles.push(std::thread::spawn(move || {
            let mut stream = UnixStream::connect(&sockpath).expect("connect");
            stream
                .write_all(&serve_frame(br#"{"q":"summary"}"#))
                .expect("send");
            stream.shutdown(std::net::Shutdown::Write).expect("half-close");
            let mut reply = Vec::new();
            stream.read_to_end(&mut reply).expect("receive");
            serve_split(&reply).into_iter().next().unwrap()
        }));
    }
    for h in handles {
        assert_eq!(
            h.join().expect("client"),
            solo,
            "concurrent socket clients must get solo-identical bytes"
        );
    }
    child.kill().ok();
    child.wait().ok();
    std::fs::remove_dir_all(&dir).ok();
}
