//! Calibration acceptance: the simulated fleet's population statistics
//! must sit within tolerance bands of the paper's published values.
//! These are the contract between `ssd-sim` and every analysis built on
//! top of it; EXPERIMENTS.md records the same comparisons narratively.

use ssd_field_study::core::{aging, characterize, errors_analysis, lifecycle};
use ssd_field_study::sim::{FleetGen, SimConfig};
use ssd_field_study::types::{DriveModel, ErrorKind, FleetTrace};
use std::sync::OnceLock;

fn trace() -> &'static FleetTrace {
    static TRACE: OnceLock<FleetTrace> = OnceLock::new();
    TRACE.get_or_init(|| {
        FleetGen::new(&SimConfig {
            drives_per_model: 1200,
            horizon_days: 2190,
            seed: 4242,
            ..SimConfig::default()
        })
        .trace()
    })
}

#[test]
fn table1_error_day_rates() {
    let inc = characterize::error_incidence(trace());
    // Paper Table 1 anchors (fraction of drive days with the error).
    let cases = [
        (ErrorKind::Correctable, DriveModel::MlcA, 0.828895, 0.05),
        (ErrorKind::Correctable, DriveModel::MlcB, 0.776308, 0.05),
        (ErrorKind::Correctable, DriveModel::MlcD, 0.767593, 0.05),
        (ErrorKind::Uncorrectable, DriveModel::MlcA, 0.002176, 0.0015),
        (ErrorKind::Uncorrectable, DriveModel::MlcB, 0.002349, 0.0015),
        (ErrorKind::FinalRead, DriveModel::MlcB, 0.001805, 0.0015),
        (ErrorKind::Write, DriveModel::MlcB, 0.001309, 0.0008),
        (ErrorKind::Write, DriveModel::MlcA, 0.000117, 0.0002),
    ];
    for (kind, model, expected, tol) in cases {
        let got = inc.rate(kind, model);
        assert!(
            (got - expected).abs() <= tol,
            "{model} {kind}: got {got}, paper {expected} (tol {tol})"
        );
    }
    // Rare kinds must stay rare (well under 1e-3).
    for kind in [ErrorKind::Meta, ErrorKind::Response, ErrorKind::Timeout] {
        for model in DriveModel::ALL {
            assert!(inc.rate(kind, model) < 1e-3, "{model} {kind} too common");
        }
    }
}

#[test]
fn table3_failure_incidence() {
    let inc = lifecycle::failure_incidence(trace());
    // Paper: MLC-A 6.95%, MLC-B 14.3%, MLC-D 12.5%. Horizon censoring of
    // late deployments biases down slightly; bands are ±40% relative.
    let expect = [0.0695, 0.143, 0.125];
    for ((name, _, _, got), expected) in inc.per_model.iter().zip(expect) {
        let rel = (got - expected).abs() / expected;
        assert!(rel < 0.4, "{name}: failed fraction {got} vs paper {expected}");
    }
    // Ordering must hold exactly: B > D > A.
    assert!(inc.per_model[1].3 > inc.per_model[2].3);
    assert!(inc.per_model[2].3 > inc.per_model[0].3);
}

#[test]
fn table4_repeat_failures() {
    let d = lifecycle::failure_count_distribution(trace());
    // Paper: 88.7% zero, 10.1% one, ~1.04% two, 0.13% three.
    assert!((d.frac_of_all(0) - 0.887).abs() < 0.06, "{}", d.frac_of_all(0));
    assert!(d.frac_of_failed(1) > 0.80, "{}", d.frac_of_failed(1));
    assert!(d.frac_of_all(2) < 0.04, "{}", d.frac_of_all(2));
}

#[test]
fn figure4_non_operational_anchors() {
    let e = lifecycle::non_operational_ecdf(trace());
    // Paper: ~20% within a day, ~80% within 7 days, ~8% beyond 100 days.
    assert!((e.eval(1.0) - 0.20).abs() < 0.10, "P(<=1d) {}", e.eval(1.0));
    assert!((e.eval(7.0) - 0.80).abs() < 0.08, "P(<=7d) {}", e.eval(7.0));
    let tail = 1.0 - e.eval(100.0);
    assert!((0.02..0.16).contains(&tail), "100-day tail {tail}");
}

#[test]
fn figure5_table5_repair_behaviour() {
    let e = lifecycle::time_to_repair_ecdf(trace());
    // Paper: about half never return (horizon censoring pushes this up).
    assert!(
        (0.40..0.75).contains(&e.censored_fraction()),
        "never-returning {}",
        e.censored_fraction()
    );
    let t5 = lifecycle::repair_reentry(trace());
    for (name, cells) in &t5.rows {
        // 10-day re-entry is single-digit percent for every model
        // (paper: 3.4 / 6.8 / 4.9).
        assert!(
            cells[0].0 < 15.0,
            "{name}: 10-day re-entry {}%",
            cells[0].0
        );
    }
}

#[test]
fn figure6_infant_mortality() {
    let fa = aging::failure_age(trace());
    assert!(
        (fa.frac_under_30d - 0.15).abs() < 0.08,
        "under-30d {} vs paper 0.15",
        fa.frac_under_30d
    );
    assert!(
        (fa.frac_under_90d - 0.25).abs() < 0.10,
        "under-90d {} vs paper 0.25",
        fa.frac_under_90d
    );
}

#[test]
fn figure8_wear_is_uninformative() {
    let w = aging::wear_at_failure(trace());
    // Paper: ~98% of failures below 1500 P/E cycles.
    assert!(
        w.frac_under_1500 > 0.88,
        "under-1500 {} vs paper 0.98",
        w.frac_under_1500
    );
}

#[test]
fn figure10_zero_ue_fractions() {
    let c = errors_analysis::cumulative_error_cdfs(trace());
    let [young, old, ok] = c.zero_ue_fracs;
    // Paper: 68% young, 45% old, 80% not-failed.
    assert!((ok - 0.80).abs() < 0.10, "not-failed zero-UE {ok}");
    assert!((young - 0.68).abs() < 0.15, "young zero-UE {young}");
    assert!((old - 0.45).abs() < 0.15, "old zero-UE {old}");
    // Paper: 26% of failures entirely symptomless.
    assert!(
        (c.symptomless_failure_frac - 0.26).abs() < 0.15,
        "symptomless {}",
        c.symptomless_failure_frac
    );
}

#[test]
fn figure11_escalation_window() {
    let p = errors_analysis::pre_failure_errors(trace());
    // Paper: P(UE within last 7 days | failure) ≈ 0.25, and the jump is
    // concentrated in the final two days.
    let old = &p.p_ue_within[1];
    let week = old.points.last().unwrap().1;
    assert!((0.10..0.45).contains(&week), "P(UE in last week) {week}");
    let day2 = old.points[2].1; // within last 2 days
    let day0 = old.points[0].1;
    assert!(day2 > 0.5 * week, "final-2-day share {day2} of week {week}");
    assert!(day0 > 0.0, "failure-day probability must be positive");
}

#[test]
fn table2_key_correlations() {
    let c = characterize::correlation_matrix(trace());
    // UE <-> final read ≈ 0.97 in the paper ("essentially the same event").
    assert!(
        c.get("uncorrectable", "final read") > 0.80,
        "UE-FR {}",
        c.get("uncorrectable", "final read")
    );
    // P/E <-> age ≈ 0.73.
    let pe_age = c.get("P/E cycle", "drive age");
    assert!((pe_age - 0.73).abs() < 0.20, "P/E-age {pe_age}");
    // P/E correlates with erase errors more than with uncorrectable ones
    // (Observation 1).
    assert!(
        c.get("P/E cycle", "erase") > c.get("P/E cycle", "uncorrectable") - 0.05,
        "erase {} vs UE {}",
        c.get("P/E cycle", "erase"),
        c.get("P/E cycle", "uncorrectable")
    );
}
