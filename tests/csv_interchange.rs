//! CSV interchange round-trips at fleet scale, and analysis invariance:
//! every analysis must produce identical results on a trace that has been
//! through the CSV boundary.

use ssd_field_study::core::{characterize, lifecycle};
use ssd_field_study::sim::{FleetGen, SimConfig};
use ssd_field_study::types::csv::{read_trace_csv, write_reports_csv, write_swaps_csv};
use std::io::BufReader;

fn trace() -> ssd_field_study::types::FleetTrace {
    // Full six-year horizon so every drive reports at least once: the CSV
    // format cannot represent a drive with no rows at all (a documented
    // limitation — short-horizon traces drop never-deployed drives).
    let t = FleetGen::new(&SimConfig {
        drives_per_model: 60,
        horizon_days: 2190,
        seed: 12,
        ..SimConfig::default()
    })
    .trace();
    assert!(
        t.drives.iter().all(|d| !d.reports.is_empty() || !d.swaps.is_empty()),
        "fixture must contain no empty drive logs"
    );
    t
}

fn csv_roundtrip(
    t: &ssd_field_study::types::FleetTrace,
) -> ssd_field_study::types::FleetTrace {
    let mut reports = Vec::new();
    let mut swaps = Vec::new();
    write_reports_csv(t, &mut reports).unwrap();
    write_swaps_csv(t, &mut swaps).unwrap();
    read_trace_csv(
        BufReader::new(reports.as_slice()),
        BufReader::new(swaps.as_slice()),
        t.horizon_days,
    )
    .unwrap()
}

#[test]
fn csv_roundtrip_is_lossless_at_fleet_scale() {
    let t = trace();
    let back = csv_roundtrip(&t);
    assert_eq!(back, t);
}

#[test]
fn analyses_are_invariant_across_the_csv_boundary() {
    let t = trace();
    let back = csv_roundtrip(&t);
    // Structured results must match exactly — same failures recovered,
    // same incidence, same correlations.
    let inc_a = lifecycle::failure_incidence(&t);
    let inc_b = lifecycle::failure_incidence(&back);
    assert_eq!(inc_a.per_model, inc_b.per_model);

    let err_a = characterize::error_incidence(&t);
    let err_b = characterize::error_incidence(&back);
    assert_eq!(err_a.rates, err_b.rates);

    let cor_a = characterize::correlation_matrix(&t);
    let cor_b = characterize::correlation_matrix(&back);
    for (ra, rb) in cor_a.matrix.iter().zip(&cor_b.matrix) {
        for (a, b) in ra.iter().zip(rb) {
            assert!(a.is_nan() && b.is_nan() || (a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn csv_is_line_oriented_and_parsable_by_naive_tools() {
    let t = trace();
    let mut reports = Vec::new();
    write_reports_csv(&t, &mut reports).unwrap();
    let text = String::from_utf8(reports).unwrap();
    let mut lines = text.lines();
    let header = lines.next().unwrap();
    let ncols = header.split(',').count();
    for line in lines {
        assert_eq!(line.split(',').count(), ncols, "ragged row: {line}");
        // No quoting or escaping anywhere.
        assert!(!line.contains('"'));
    }
}
