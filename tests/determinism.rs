//! Determinism contracts: the whole pipeline is a pure function of
//! (configuration, seed) — independent of thread count and repeatable
//! across runs.

use ssd_field_study::core::{build_dataset, ExtractOptions};
use ssd_field_study::ml::{cross_validate, CvOptions, ForestConfig, Trainer};
use ssd_field_study::sim::{FleetGen, GenMode, SimConfig};
use ssd_field_study::types::codec::encode_trace;

fn cfg() -> SimConfig {
    SimConfig {
        drives_per_model: 100,
        horizon_days: 1000,
        seed: 31415,
        ..SimConfig::default()
    }
}

#[test]
fn fleet_generation_is_thread_count_independent() {
    let cfg = cfg();
    let parallel = FleetGen::new(&cfg).trace();
    let sequential = FleetGen::new(&cfg).trace_sequential();
    assert_eq!(parallel, sequential);
    // Byte-identical archives, not just structural equality.
    assert_eq!(encode_trace(&parallel), encode_trace(&sequential));
}

#[test]
fn fleet_generation_is_repeatable_within_and_across_thread_pools() {
    let cfg = cfg();
    let a = FleetGen::new(&cfg).trace();
    let a_bytes = encode_trace(&a);
    // Runs on differently-sized pools must agree byte-for-byte.
    for n_threads in [1, 2, 5] {
        let pool = ssd_field_study::parallel::ThreadPoolBuilder::new()
            .num_threads(n_threads)
            .build()
            .unwrap();
        let b = pool.install(|| FleetGen::new(&cfg).trace());
        assert_eq!(a, b, "pool size {n_threads} changed the fleet");
        assert_eq!(a_bytes, encode_trace(&b));
    }
}

#[test]
fn arena_archive_is_byte_identical_to_baseline_at_every_pool_size() {
    // 50 drives per model, seeded: the arena/SoA emission path must
    // reproduce the pre-change path (materialize a FleetTrace, then
    // encode it) bit for bit, at every pool size.
    let cfg = SimConfig {
        drives_per_model: 50,
        horizon_days: 1000,
        seed: 271828,
        ..SimConfig::default()
    };
    let baseline = encode_trace(&FleetGen::new(&cfg).trace_sequential());
    assert_eq!(
        FleetGen::new(&cfg).run_vec(),
        baseline,
        "arena path diverged from baseline"
    );
    for n_threads in [1, 2, 5] {
        let pool = ssd_field_study::parallel::ThreadPoolBuilder::new()
            .num_threads(n_threads)
            .build()
            .unwrap();
        let archived = pool.install(|| FleetGen::new(&cfg).run_vec());
        assert_eq!(
            archived, baseline,
            "pool size {n_threads} changed the arena archive"
        );
    }
}

#[test]
fn streamed_archive_is_byte_identical_to_in_memory_at_every_pool_size() {
    // The Write-sink writer emits waves of chunks as they land; the bytes
    // on the sink must match the in-memory archive (and therefore the
    // encode_trace baseline) at every pool size.
    let cfg = SimConfig {
        drives_per_model: 50,
        horizon_days: 1000,
        seed: 271828,
        ..SimConfig::default()
    };
    let baseline = FleetGen::new(&cfg).run_vec();
    for n_threads in [1, 2, 5] {
        let pool = ssd_field_study::parallel::ThreadPoolBuilder::new()
            .num_threads(n_threads)
            .build()
            .unwrap();
        let mut streamed = Vec::new();
        let stats = pool
            .install(|| FleetGen::new(&cfg).run(&mut streamed))
            .unwrap();
        assert_eq!(
            streamed, baseline,
            "pool size {n_threads} changed the streamed archive"
        );
        assert_eq!(stats.bytes, baseline.len() as u64);
        assert_eq!(stats.drives, 150);
    }
}

#[test]
fn fast_forward_archive_is_byte_identical_at_every_pool_size() {
    // Fast-forward is a traversal optimization, not a different model:
    // its archive must match the day-by-day bytes exactly, at every pool
    // size (the tentpole contract of the fast-forward mode).
    let cfg = SimConfig {
        drives_per_model: 50,
        horizon_days: 1000,
        seed: 271828,
        ..SimConfig::default()
    };
    let baseline = FleetGen::new(&cfg).run_vec();
    let ff = FleetGen::new(&cfg).mode(GenMode::FastForward);
    assert_eq!(ff.run_vec(), baseline, "fast-forward diverged from day-by-day");
    for n_threads in [1, 2, 5] {
        let pool = ssd_field_study::parallel::ThreadPoolBuilder::new()
            .num_threads(n_threads)
            .build()
            .unwrap();
        let archived = pool.install(|| ff.run_vec());
        assert_eq!(
            archived, baseline,
            "pool size {n_threads} changed the fast-forward archive"
        );
    }
}

#[test]
fn datasets_and_models_are_reproducible() {
    let trace = FleetGen::new(&cfg()).trace();
    let opts = ExtractOptions {
        lookahead_days: 2,
        negative_sample_rate: 0.2,
        ..Default::default()
    };
    let d1 = build_dataset(&trace, &opts);
    let d2 = build_dataset(&trace, &opts);
    assert_eq!(d1, d2);

    let forest = ForestConfig {
        n_trees: 12,
        ..Default::default()
    };
    let m1 = forest.fit(&d1, 9);
    let m2 = forest.fit(&d2, 9);
    assert_eq!(m1.predict_batch(&d1), m2.predict_batch(&d1));
}

#[test]
fn cross_validation_is_reproducible() {
    let trace = FleetGen::new(&cfg()).trace();
    let data = build_dataset(
        &trace,
        &ExtractOptions {
            lookahead_days: 3,
            negative_sample_rate: 0.3,
            ..Default::default()
        },
    );
    let forest = ForestConfig {
        n_trees: 8,
        ..Default::default()
    };
    let opts = CvOptions {
        k: 3,
        downsample_ratio: 1.0,
        seed: 77,
    };
    let a = cross_validate(&forest, &data, &opts);
    let b = cross_validate(&forest, &data, &opts);
    assert_eq!(a, b);
}

#[test]
fn seeds_actually_matter() {
    let mut c1 = cfg();
    let mut c2 = cfg();
    c1.seed = 1;
    c2.seed = 2;
    assert_ne!(FleetGen::new(&c1).trace(), FleetGen::new(&c2).trace());
}
