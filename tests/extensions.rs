//! Integration coverage for the beyond-the-paper extensions: GBDT,
//! probability calibration, drift detection, and the observation audit,
//! all running on the same simulated fleet end to end.

use ssd_field_study::core::{
    audit_trace_observations, build_dataset, drift_report, ExtractOptions,
};
use ssd_field_study::ml::{
    cross_validate, expected_calibration_error, grouped_kfold, roc_auc, CvOptions,
    ForestConfig, GbdtConfig, PlattScaler, Trainer,
};
use ssd_field_study::sim::{FleetGen, SimConfig};
use ssd_field_study::types::FleetTrace;
use std::sync::OnceLock;

fn trace() -> &'static FleetTrace {
    static T: OnceLock<FleetTrace> = OnceLock::new();
    T.get_or_init(|| {
        FleetGen::new(&SimConfig {
            drives_per_model: 300,
            horizon_days: 2190,
            seed: 31337,
            ..SimConfig::default()
        })
        .trace()
    })
}

#[test]
fn gbdt_is_competitive_with_the_forest() {
    let data = build_dataset(
        trace(),
        &ExtractOptions {
            lookahead_days: 7, // the "large N" regime the paper targets next
            negative_sample_rate: 0.05,
            ..Default::default()
        },
    );
    let opts = CvOptions::default();
    let rf = cross_validate(
        &ForestConfig {
            n_trees: 40,
            ..Default::default()
        },
        &data,
        &opts,
    );
    let gb = cross_validate(
        &GbdtConfig {
            n_trees: 80,
            ..Default::default()
        },
        &data,
        &opts,
    );
    // At 900 drives the downsampled training folds hold only ~60 positive
    // rows — far below boosting's comfort zone — so GBDT trails the forest
    // here; the assertion bounds the gap rather than demanding parity.
    assert!(gb.mean() > 0.60, "GBDT N=7 AUC {}", gb.mean());
    assert!(
        rf.mean() - gb.mean() < 0.15,
        "GBDT {} vs RF {} diverged",
        gb.mean(),
        rf.mean()
    );
}

#[test]
fn calibration_improves_forest_probabilities() {
    let data = build_dataset(
        trace(),
        &ExtractOptions {
            lookahead_days: 3,
            negative_sample_rate: 0.05,
            ..Default::default()
        },
    );
    // Hold out fold 0 for calibration + evaluation; train on the rest,
    // downsampled (which is exactly what mis-calibrates the forest).
    let folds = grouped_kfold(&data, 4, 1);
    let held: std::collections::HashSet<usize> = folds[0].iter().copied().collect();
    let train_idx: Vec<usize> = (0..data.n_rows()).filter(|i| !held.contains(i)).collect();
    let train_idx = ssd_field_study::ml::downsample_majority(&data, &train_idx, 1.0, 1);
    let model = ForestConfig {
        n_trees: 40,
        ..Default::default()
    }
    .fit(&data.select(&train_idx), 1);

    let test = data.select(&folds[0]);
    let raw = model.predict_batch(&test);
    let scaler = PlattScaler::fit(&raw, test.labels());
    let cal = scaler.transform_batch(&raw);

    let ece_raw = expected_calibration_error(&raw, test.labels(), 10);
    let ece_cal = expected_calibration_error(&cal, test.labels(), 10);
    assert!(
        ece_cal < ece_raw,
        "calibration must reduce ECE: {ece_raw} -> {ece_cal}"
    );
    // And never change the ranking.
    let auc_raw = roc_auc(&raw, test.labels());
    let auc_cal = roc_auc(&cal, test.labels());
    assert!((auc_raw - auc_cal).abs() < 1e-9);
}

#[test]
fn drift_is_silent_between_like_fleets_and_loud_after_a_shift() {
    let reference = trace();
    let like = FleetGen::new(&SimConfig {
        drives_per_model: 300,
        horizon_days: 2190,
        seed: 999,
        ..SimConfig::default()
    })
    .trace();
    let quiet = drift_report(reference, &like);
    assert!(!quiet.any_drift(1e-5), "like fleets must not alarm");

    let mut shifted = like.clone();
    for d in &mut shifted.drives {
        for r in &mut d.reports {
            r.write_ops = (r.write_ops as f64 * 1.8) as u64;
        }
    }
    let loud = drift_report(reference, &shifted);
    assert!(loud.any_drift(1e-5), "workload shift must alarm");
}

#[test]
fn trace_observations_audit_passes_end_to_end() {
    let checks = audit_trace_observations(trace());
    let failing: Vec<u8> = checks.iter().filter(|c| !c.holds).map(|c| c.id).collect();
    assert!(
        failing.len() <= 1,
        "at most one scale-sensitive observation may fail at 900 drives: {failing:?}"
    );
}
