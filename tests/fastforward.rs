//! Importance-sampled fleets against uniform ground truth.
//!
//! The tentpole contract for `Sampling::Importance` is statistical, not
//! bitwise: boosting the defective/infant subpopulation changes *which*
//! fleet is simulated, but the recorded log-weights must let every
//! weighted estimator (summary tallies, Kaplan–Meier survival, ROC AUC)
//! recover the uniform population's statistics within pinned tolerances —
//! while simulating strictly fewer drive-days on the same seed. Byte-level
//! fast-forward identity lives in `tests/determinism.rs` and the sim
//! proptests; this file owns the estimator-equivalence half plus codec
//! round-trip fuzz for the weight column.

use ssd_field_study::core::failure::operational_periods;
use ssd_field_study::core::lifecycle::time_to_failure_km;
use ssd_field_study::core::streaming::{StreamSummary, SummaryAccumulator};
use ssd_field_study::ml::{roc_auc, roc_auc_weighted};
use ssd_field_study::sim::{FleetGen, Sampling, SimConfig};
use ssd_field_study::stats::{Duration, KaplanMeier};
use ssd_field_study::types::codec::{decode_trace, encode_trace};
use ssd_field_study::types::{DriveLog, FleetTrace};
use ssd_testkit::for_each_case;

/// Oversampling factor for the defective/infant subpopulation.
const BOOST: f64 = 4.0;

fn cfg() -> SimConfig {
    SimConfig {
        drives_per_model: 1000,
        horizon_days: 1095,
        seed: 7,
        ..SimConfig::default()
    }
}

fn uniform_trace() -> FleetTrace {
    FleetGen::new(&cfg()).trace()
}

fn boosted_trace() -> FleetTrace {
    FleetGen::new(&cfg())
        .sampling(Sampling::Importance { boost: BOOST })
        .trace()
}

fn summarize(trace: &FleetTrace) -> StreamSummary {
    let mut acc = SummaryAccumulator::new();
    for d in &trace.drives {
        acc.observe(d);
    }
    acc.finish()
}

/// Step-function evaluation of a Kaplan–Meier curve at time `t`.
fn surv_at(km: &KaplanMeier, t: f64) -> f64 {
    let mut s = 1.0;
    for &(time, surv) in km.steps() {
        if time <= t {
            s = surv;
        } else {
            break;
        }
    }
    s
}

/// A deliberately simple per-drive risk score — cumulative error events
/// plus end-of-life grown bad blocks — so the AUC comparison exercises
/// the weighted estimator, not a model's variance.
fn heuristic_score(d: &DriveLog) -> f64 {
    let errors: u64 = d
        .reports
        .iter()
        .map(|r| r.errors.0.iter().sum::<u64>())
        .sum();
    let grown = d.reports.last().map_or(0, |r| u64::from(r.grown_bad_blocks));
    (errors + grown) as f64
}

#[test]
fn importance_weighted_summary_matches_uniform_population() {
    let uniform = uniform_trace();
    let boosted = boosted_trace();
    let u = summarize(&uniform);
    let b = summarize(&boosted);

    // Uniform fleets carry all-zero log-weights, so the weighted section
    // is omitted; the boosted fleet must produce it.
    assert!(u.weighted.is_none(), "uniform fleet grew a weighted section");
    let w = b.weighted.as_ref().expect("boosted fleet has weights");

    // The boost concentrates simulation effort on short-lived drives:
    // strictly fewer drive-days than the uniform fleet on the same seed.
    assert!(
        b.total_drive_days < u.total_drive_days,
        "importance sampling did not reduce simulated drive-days: {} vs {}",
        b.total_drive_days,
        u.total_drive_days,
    );

    // Horvitz–Thompson recovery of Table 3. The *raw* boosted tallies
    // overstate failure incidence ~2.5× (0.096 vs 0.038 on this seed);
    // the weighted estimates must land within a pinned band of uniform
    // ground truth, and strictly closer than the raw tallies.
    let u_failed = u.failure_incidence.total_failed_fraction;
    let raw_failed = b.failure_incidence.total_failed_fraction;
    assert!(
        (w.total_failed_fraction - u_failed).abs() < 0.01,
        "weighted failed fraction {:.5} vs uniform {u_failed:.5}",
        w.total_failed_fraction,
    );
    assert!(
        (w.total_failed_fraction - u_failed).abs() < (raw_failed - u_failed).abs(),
        "weighting did not improve on raw boosted tallies",
    );

    let u_swap_rate = u.total_swaps as f64 / u.n_drives as f64;
    assert!(
        (w.swaps_per_drive - u_swap_rate).abs() / u_swap_rate < 0.2,
        "weighted swap rate {:.5} vs uniform {u_swap_rate:.5}",
        w.swaps_per_drive,
    );

    // Σ exp(log_weight) estimates the population size the sample stands
    // in for — it must hover around the actual fleet size.
    let n = b.n_drives as f64;
    assert!(
        (w.effective_drives - n).abs() / n < 0.05,
        "effective drives {:.1} vs fleet size {n}",
        w.effective_drives,
    );

    // Per-model failed fractions (the rows of Table 3), same band.
    for ((name, _, _, uf), (_, _, _, wf)) in
        u.failure_incidence.per_model.iter().zip(&w.per_model)
    {
        assert!(
            (wf - uf).abs() < 0.015,
            "model {name}: weighted failed frac {wf:.5} vs uniform {uf:.5}",
        );
    }

    // Weighted error day-probabilities (Table 1): the dominant kinds are
    // tight; rare kinds (a handful of events fleet-wide) get a loose
    // absolute band so sampling noise can't flake the test.
    for (i, (ur, wr)) in u.error_incidence.rates.iter().zip(&w.error_rates).enumerate() {
        for (m, (a, b)) in ur.iter().zip(wr).enumerate() {
            let tol = (a * 0.25).max(5e-5);
            assert!(
                (a - b).abs() < tol,
                "error kind {i} model {m}: weighted rate {b:.6} vs uniform {a:.6}",
            );
        }
    }
}

#[test]
fn importance_weighted_km_matches_uniform_curve() {
    let uniform = uniform_trace();
    let boosted = boosted_trace();
    let km_u = time_to_failure_km(&uniform);

    let mut durations = Vec::new();
    let mut weights = Vec::new();
    for d in &boosted.drives {
        let w = d.log_weight.exp();
        for p in operational_periods(d) {
            durations.push(match p.length_to_failure {
                Some(l) => Duration {
                    time: f64::from(l),
                    event: true,
                },
                None => Duration {
                    time: f64::from(d.max_age_days().saturating_sub(p.start_day)),
                    event: false,
                },
            });
            weights.push(w);
        }
    }
    let km_w = KaplanMeier::fit_weighted(&durations, &weights);

    // Anchor the weighted curve to the uniform one across the horizon.
    // Observed diffs on this seed are ≤ 0.006; the band leaves ~3× slack.
    for t in [30.0, 90.0, 365.0, 730.0, 1000.0] {
        let su = surv_at(&km_u, t);
        let sw = surv_at(&km_w, t);
        assert!(
            (su - sw).abs() < 0.02,
            "KM at t={t}: weighted {sw:.5} vs uniform {su:.5}",
        );
    }
}

#[test]
fn importance_weighted_auc_matches_uniform() {
    let uniform = uniform_trace();
    let boosted = boosted_trace();

    let (su, lu): (Vec<f64>, Vec<bool>) = uniform
        .drives
        .iter()
        .map(|d| (heuristic_score(d), d.ever_failed()))
        .unzip();
    let auc_u = roc_auc(&su, &lu);

    let mut sb = Vec::new();
    let mut lb = Vec::new();
    let mut wb = Vec::new();
    for d in &boosted.drives {
        sb.push(heuristic_score(d));
        lb.push(d.ever_failed());
        wb.push(d.log_weight.exp());
    }
    let auc_w = roc_auc_weighted(&sb, &lb, &wb);
    let auc_raw = roc_auc(&sb, &lb);

    // On this seed: uniform 0.544, weighted 0.548, raw (unweighted on the
    // boosted fleet) 0.502 — the weights both recover the population AUC
    // and visibly out-correct ignoring them.
    assert!(
        (auc_w - auc_u).abs() < 0.03,
        "weighted AUC {auc_w:.4} vs uniform {auc_u:.4}",
    );
    assert!(
        (auc_w - auc_u).abs() < (auc_raw - auc_u).abs(),
        "weighting did not improve on the raw boosted AUC \
         (weighted {auc_w:.4}, raw {auc_raw:.4}, uniform {auc_u:.4})",
    );
}

#[test]
fn weighted_archives_roundtrip_byte_exactly_under_fuzz() {
    // Codec round-trip fuzz over the weight column: random small
    // importance-sampled fleets (random seed, size, boost) must decode to
    // bit-identical log-weights and re-encode to the identical archive.
    for_each_case("weighted_archive_roundtrip", 16, |g| {
        let cfg = SimConfig {
            drives_per_model: g.u32_in(2, 12),
            horizon_days: g.u32_in(30, 400),
            seed: g.u64(),
            ..SimConfig::default()
        };
        let boost = g.f64_in(1.0, 12.0);
        let trace = FleetGen::new(&cfg)
            .sampling(Sampling::Importance { boost })
            .trace();
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).expect("weighted archive decodes");
        assert_eq!(back.drives.len(), trace.drives.len());
        for (a, b) in back.drives.iter().zip(&trace.drives) {
            assert_eq!(
                a.log_weight.to_bits(),
                b.log_weight.to_bits(),
                "weight bits changed across the codec"
            );
        }
        assert_eq!(back, trace);
        assert_eq!(encode_trace(&back), bytes, "re-encode diverged");
    });
}
