//! Hermetic-build guard: the workspace must never depend on an external
//! (registry) crate. The build environment has no reachable crate
//! registry, so any non-`path` dependency makes the whole workspace
//! unbuildable — this test fails fast, in-tree, with a pointer to the
//! offending manifest line instead of a cargo resolution error.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of this package is the workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn manifests() -> Vec<PathBuf> {
    let root = workspace_root();
    let mut out = vec![root.join("Cargo.toml")];
    let crates = root.join("crates");
    for entry in std::fs::read_dir(&crates).expect("read crates/") {
        let path = entry.expect("dir entry").path().join("Cargo.toml");
        if path.is_file() {
            out.push(path);
        }
    }
    assert!(out.len() >= 8, "expected root + 7 crate manifests, found {}", out.len());
    out
}

/// True for section headers naming a dependency table, including
/// `[workspace.dependencies]`, `[dev-dependencies]`, target-specific
/// tables, and dotted single-dependency tables like `[dependencies.foo]`.
fn is_dependency_section(header: &str) -> bool {
    let h = header.trim_matches(['[', ']']);
    h == "workspace.dependencies"
        || h.split('.').any(|part| {
            part == "dependencies" || part == "dev-dependencies" || part == "build-dependencies"
        })
}

/// A dependency entry is hermetic iff its value declares a `path` source
/// or inherits one from the workspace table (`workspace = true`).
fn entry_is_hermetic(value: &str) -> bool {
    value.contains("path") || value.replace(' ', "").contains("workspace=true")
}

fn check_manifest(path: &Path, violations: &mut Vec<String>) {
    let text = std::fs::read_to_string(path).expect("read manifest");
    let mut in_dep_section = false;
    // For `[dependencies.foo]`-style tables the keys themselves (version,
    // path, ...) span following lines; collect them and judge at the end.
    let mut dotted: Option<(String, String)> = None;
    let flush_dotted = |dotted: &mut Option<(String, String)>, violations: &mut Vec<String>| {
        if let Some((header, body)) = dotted.take() {
            if !entry_is_hermetic(&body) {
                violations.push(format!("{}: {header} is not a path dependency", path.display()));
            }
        }
    };
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush_dotted(&mut dotted, violations);
            in_dep_section = is_dependency_section(line);
            if in_dep_section && line.trim_matches(['[', ']']).split('.').count() > 1
                && !line.contains("workspace.dependencies")
                && line.trim_matches(['[', ']']).split('.').last() != Some("dependencies")
                && line.trim_matches(['[', ']']).split('.').last() != Some("dev-dependencies")
                && line.trim_matches(['[', ']']).split('.').last() != Some("build-dependencies")
            {
                // e.g. [dev-dependencies.serde_json]
                dotted = Some((line.to_string(), String::new()));
            }
            continue;
        }
        if !in_dep_section {
            continue;
        }
        if let Some((_, body)) = dotted.as_mut() {
            body.push_str(line);
            body.push('\n');
            continue;
        }
        let Some((name, value)) = line.split_once('=') else {
            continue;
        };
        // Dotted-key form: `ssd-types.workspace = true`.
        let inherits = name.trim().ends_with(".workspace") && value.trim() == "true";
        if !inherits && !entry_is_hermetic(value) {
            violations.push(format!(
                "{}: dependency `{}` = {} is not a path/workspace dependency",
                path.display(),
                name.trim(),
                value.trim()
            ));
        }
    }
    flush_dotted(&mut dotted, violations);
}

#[test]
fn all_dependencies_are_workspace_internal() {
    let mut violations = Vec::new();
    for manifest in manifests() {
        check_manifest(&manifest, &mut violations);
    }
    assert!(
        violations.is_empty(),
        "non-hermetic dependencies found (the build environment has no crate \
         registry; use an in-tree substrate instead — see README \"Offline \
         build\"):\n{}",
        violations.join("\n")
    );
}

#[test]
fn workspace_dependency_table_only_lists_path_crates() {
    let text = std::fs::read_to_string(workspace_root().join("Cargo.toml")).expect("root manifest");
    let mut in_table = false;
    for raw in text.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_table = line == "[workspace.dependencies]";
            continue;
        }
        if in_table && line.contains('=') {
            assert!(
                line.contains("path"),
                "[workspace.dependencies] entry without a path source: {line}"
            );
        }
    }
}

#[test]
fn known_external_crates_are_absent() {
    // The crates the seed depended on before the in-tree substrates; their
    // reappearance in any manifest is the most likely regression.
    let banned = ["rayon", "serde", "serde_json", "bytes", "proptest", "criterion"];
    for manifest in manifests() {
        let text = std::fs::read_to_string(&manifest).expect("read manifest");
        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            let Some((name, _)) = line.split_once('=') else {
                continue;
            };
            let name = name.trim().trim_matches('"');
            assert!(
                !banned.contains(&name),
                "{}: banned external crate `{name}` reintroduced",
                manifest.display()
            );
        }
    }
}
