//! Hermetic-build guard, thin edition: the manifest-parsing logic now
//! lives in `ssd-lint`'s hermeticity rule (crates/lint/src/rules.rs),
//! where it is fixture-tested and shared with the CLI. This test keeps
//! the guard wired into the root `cargo test` tier so a non-path
//! dependency still fails fast with the offending manifest line.
//!
//! Equivalent from the command line: `ssd-lint --rule hermeticity`.

use ssd_lint::{lint_workspace, RuleId};
use std::path::Path;

#[test]
fn all_dependencies_resolve_in_tree() {
    // CARGO_MANIFEST_DIR of this package is the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = lint_workspace(root, &[RuleId::Hermeticity, RuleId::AllowGrammar])
        .expect("lint walk");
    assert!(
        diags.is_empty(),
        "non-hermetic dependencies:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
