//! Integration battery for the online prediction pipeline: streaming
//! feature extraction, incremental per-drive state, and flattened
//! whole-fleet scoring.
//!
//! The pipeline promises three equivalences, each pinned here:
//!
//! 1. **streaming = offline** — `build_dataset_streaming` over an
//!    archived trace file produces the *same dataset* (bit-for-bit
//!    features, same labels, same sampling draws) as `build_dataset`
//!    over the in-memory fleet it was encoded from;
//! 2. **online = offline** — `OnlineFleet` fed day by day, in any drive
//!    order and any thread-pool size, scores every drive identically;
//! 3. **robustness** — truncated or byte-flipped archives surface typed
//!    errors from the streaming extractor, never panics.
//!
//! `predict_fleet_day` output is additionally pinned with bit-level
//! goldens (regenerate with `SSD_GOLDEN_PRINT=1 cargo test --test
//! online_predict -- --nocapture` after an intentional change).

use ssd_field_study_core::{
    build_dataset, build_dataset_streaming, ExtractOptions, OnlineFleet,
};
use ssd_ml::{FlatForest, ForestConfig, RandomForest};
use ssd_sim::{FleetGen, SimConfig};
use ssd_testkit::{for_each_case, Gen};
use ssd_types::codec::encode_trace;
use ssd_types::source::TraceSource;
use ssd_types::{DriveId, FleetTrace};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Small but non-trivial fleet: 3 models × 40 drives over 800 days.
/// This seed yields 5 swaps (~70 positive training rows with the
/// 14-day lookahead) — enough failures that a fitted forest produces a
/// non-trivial risk ranking. (Shorter horizons often produce *zero*
/// swaps, which would silently pin an all-zero degenerate golden; the
/// extraction tests guard `class_counts` for exactly that reason.)
fn small_fleet() -> FleetTrace {
    FleetGen::new(&SimConfig {
        drives_per_model: 40,
        horizon_days: 800,
        seed: 11,
        ..SimConfig::default()
    })
    .trace()
}

fn extract_opts() -> ExtractOptions {
    ExtractOptions {
        lookahead_days: 14,
        negative_sample_rate: 0.5,
        seed: 7,
        ..Default::default()
    }
}

fn scratch_file(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssd_online_{}_{name}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join("trace.ssdfs")
}

#[test]
fn streaming_extraction_over_archive_file_equals_offline_extraction() {
    let trace = small_fleet();
    let offline = build_dataset(&trace, &extract_opts());

    let path = scratch_file("stream_eq");
    std::fs::write(&path, encode_trace(&trace)).expect("write archive");
    let source = TraceSource::from_path(path.to_str().unwrap(), None).expect("open source");
    let mut reader = source.open().expect("open reader");
    let streamed = build_dataset_streaming(&mut reader, &extract_opts()).expect("stream dataset");

    // Dataset derives PartialEq over features, labels, and groups — this
    // is bit-level equality of every f32 feature cell plus identical
    // negative-sampling draws.
    assert_eq!(offline, streamed);
    let (pos, neg) = offline.class_counts();
    assert!(pos > 0 && neg > 0, "fixture degenerated: {pos} pos / {neg} neg");
    std::fs::remove_file(&path).ok();
}

#[test]
fn fleet_day_scores_are_identical_for_every_drive_order() {
    let trace = small_fleet();
    let data = build_dataset(&trace, &extract_opts());
    let forest = RandomForest::fit(
        &ForestConfig {
            n_trees: 10,
            ..Default::default()
        },
        &data,
        3,
    );
    let flat = FlatForest::from_forest(&forest);

    let score_in_order = |order: &[usize]| -> BTreeMap<u32, u64> {
        let mut fleet = OnlineFleet::new();
        for &i in order {
            fleet.observe_drive(&trace.drives[i]);
        }
        fleet
            .predict_fleet_day(&flat)
            .into_iter()
            .map(|(id, p)| (id.0, p.to_bits()))
            .collect()
    };

    let forward: Vec<usize> = (0..trace.drives.len()).collect();
    let baseline = score_in_order(&forward);
    // Only drives that reported at least once occupy a fleet slot.
    let reporting = trace.drives.iter().filter(|d| !d.reports.is_empty()).count();
    assert_eq!(baseline.len(), reporting);
    assert!(reporting > 0, "fixture degenerated: no reporting drives");

    let mut reversed = forward.clone();
    reversed.reverse();
    assert_eq!(baseline, score_in_order(&reversed), "reverse arrival order");

    // The per-drive feature rows behind those scores are themselves
    // order-independent, and every scored drive exposes one.
    let build_fleet = |order: &[usize]| {
        let mut fleet = OnlineFleet::new();
        for &i in order {
            fleet.observe_drive(&trace.drives[i]);
        }
        fleet
    };
    let (fwd_fleet, rev_fleet) = (build_fleet(&forward), build_fleet(&reversed));
    for &id in baseline.keys() {
        let id = DriveId(id);
        let row = fwd_fleet.features_of(id).expect("scored drive has a feature row");
        assert_eq!(Some(row), rev_fleet.features_of(id), "feature row of drive {}", id.0);
    }

    // Deterministic shuffles: same per-drive scores no matter how the
    // fleet's telemetry happens to interleave.
    let mut g = Gen::from_seed(0x0D5E);
    for round in 0..3 {
        let mut shuffled = forward.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, g.usize_in(0, i + 1));
        }
        assert_eq!(baseline, score_in_order(&shuffled), "shuffle round {round}");
    }
}

#[test]
fn fleet_day_scores_are_identical_across_pool_sizes() {
    let trace = small_fleet();
    let data = build_dataset(&trace, &extract_opts());
    let cfg = ForestConfig {
        n_trees: 10,
        ..Default::default()
    };
    let run_with_pool = |threads: usize| -> Vec<u64> {
        ssd_parallel::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap()
            .install(|| {
                let forest = RandomForest::fit(&cfg, &data, 3);
                let flat = FlatForest::from_forest(&forest);
                let mut fleet = OnlineFleet::new();
                for log in &trace.drives {
                    fleet.observe_drive(log);
                }
                fleet
                    .predict_fleet_day(&flat)
                    .into_iter()
                    .map(|(_, p)| p.to_bits())
                    .collect()
            })
    };
    let single = run_with_pool(1);
    for threads in [2, 5] {
        assert_eq!(single, run_with_pool(threads), "pool size {threads}");
    }
}

#[test]
fn predict_fleet_day_goldens_are_pinned() {
    // End-to-end pin: simulator → offline training set → forest → flat
    // scorer → online replay → whole-fleet batch scores. Any change to
    // feature extraction, tree fitting, flattening, or traversal moves
    // these bits.
    let trace = small_fleet();
    let data = build_dataset(&trace, &extract_opts());
    let forest = RandomForest::fit(
        &ForestConfig {
            n_trees: 10,
            ..Default::default()
        },
        &data,
        3,
    );
    let flat = FlatForest::from_forest(&forest);
    let mut fleet = OnlineFleet::new();
    for log in &trace.drives {
        fleet.observe_drive(log);
    }
    let mut scored = fleet.predict_fleet_day(&flat);
    // Healthy end-of-trace drives all sit in pure-negative leaves and
    // score exactly 0.0; pin the top of the risk ranking instead, where
    // the interesting bits live (ties break toward the lower drive id).
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
    let got: Vec<f64> = scored.iter().take(8).map(|&(_, p)| p).collect();

    if std::env::var("SSD_GOLDEN_PRINT").is_ok() {
        let bits: Vec<String> =
            got.iter().map(|p| format!("0x{:016X}", p.to_bits())).collect();
        println!("fleet_day: [\n    {},\n]", bits.join(",\n    "));
        return;
    }
    assert_eq!(got.len(), FLEET_DAY_GOLDEN.len());
    for (i, (&p, &w)) in got.iter().zip(&FLEET_DAY_GOLDEN).enumerate() {
        assert_eq!(
            p.to_bits(),
            w,
            "fleet_day[{i}]: got {p} (0x{:016X}), want {} (0x{w:016X})",
            p.to_bits(),
            f64::from_bits(w),
        );
    }
}

const FLEET_DAY_GOLDEN: [u64; 8] = [
    0x3FF0000000000000,
    0x3FF0000000000000,
    0x3FEF5C28F6666666,
    0x3FDB851EB999999A,
    0x3FB9AE042599999A,
    0x3FB999999999999A,
    0x3FA999999999999A,
    0x3F50B7E6E6666666,
];

#[test]
fn mutated_archives_error_cleanly_through_streaming_extraction() {
    // Fuzz the decoder + extractor stack: truncations at every kind of
    // boundary and random byte flips must yield Ok (mutation landed in
    // padding/unreached bytes) or a typed TraceReadError — never a panic,
    // never an abort. The cases are deterministic, so any failure
    // reproduces.
    let trace = FleetGen::new(&SimConfig {
        drives_per_model: 4,
        horizon_days: 90,
        seed: 5,
        ..SimConfig::default()
    })
    .trace();
    let archive = encode_trace(&trace);
    let path = scratch_file("fuzz");

    let feed = |bytes: &[u8]| {
        std::fs::write(&path, bytes).expect("write mutated archive");
        let source = match TraceSource::from_path(path.to_str().unwrap(), None) {
            Ok(s) => s,
            Err(_) => return, // typed error at open: acceptable
        };
        let mut reader = match source.open() {
            Ok(r) => r,
            Err(_) => return,
        };
        // Result intentionally ignored: both Ok and Err are in-contract;
        // only a panic (which fails the test) is not.
        let _ = build_dataset_streaming(&mut reader, &extract_opts());
    };

    for_each_case("truncated_archives_never_panic", 64, |g| {
        let cut = g.usize_in(0, archive.len());
        feed(&archive[..cut]);
    });

    for_each_case("byte_flipped_archives_never_panic", 128, |g| {
        let mut bytes = archive.clone();
        for _ in 0..g.usize_in(1, 8) {
            let at = g.usize_in(0, bytes.len());
            bytes[at] ^= g.u64() as u8 | 1; // always a real flip
        }
        feed(&bytes);
    });

    std::fs::remove_file(&path).ok();
}
