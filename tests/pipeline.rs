//! End-to-end integration: fleet simulation → feature extraction →
//! training → evaluation, across crate boundaries.

use ssd_field_study::core::{build_dataset, AgeFilter, ExtractOptions, LabelKind};
use ssd_field_study::ml::{
    cross_validate, CvOptions, ForestConfig, LogisticRegressionConfig,
};
use ssd_field_study::sim::{FleetGen, SimConfig};
use ssd_field_study::types::ErrorKind;

fn trace() -> ssd_field_study::types::FleetTrace {
    FleetGen::new(&SimConfig {
        drives_per_model: 400,
        horizon_days: 2190,
        seed: 555,
        ..SimConfig::default()
    })
    .trace()
}

#[test]
fn full_pipeline_reaches_paper_band_auc() {
    let trace = trace();
    let data = build_dataset(
        &trace,
        &ExtractOptions {
            lookahead_days: 1,
            negative_sample_rate: 0.05,
            ..Default::default()
        },
    );
    let r = cross_validate(
        &ForestConfig {
            n_trees: 60,
            ..Default::default()
        },
        &data,
        &CvOptions::default(),
    );
    // Paper Table 6: RF at N=1 is 0.905 ± 0.008 on 30k drives. At 1.2k
    // drives we accept a generous band around it.
    assert!(
        (0.78..=0.99).contains(&r.mean()),
        "RF N=1 AUC {} outside the acceptance band",
        r.mean()
    );
}

#[test]
fn forest_beats_linear_model_end_to_end() {
    let trace = trace();
    let data = build_dataset(
        &trace,
        &ExtractOptions {
            lookahead_days: 1,
            negative_sample_rate: 0.05,
            ..Default::default()
        },
    );
    let opts = CvOptions::default();
    let rf = cross_validate(
        &ForestConfig {
            n_trees: 60,
            ..Default::default()
        },
        &data,
        &opts,
    );
    let lr = cross_validate(&LogisticRegressionConfig::default(), &data, &opts);
    // Table 6 ordering: Random Forest > Logistic Regression (0.905 vs
    // 0.796). Allow for CV noise with a small slack.
    assert!(
        rf.mean() > lr.mean() - 0.01,
        "RF {} should not trail LR {}",
        rf.mean(),
        lr.mean()
    );
}

#[test]
fn longer_lookahead_is_harder_end_to_end() {
    let trace = trace();
    let mut aucs = Vec::new();
    for n in [1u32, 7, 21] {
        let data = build_dataset(
            &trace,
            &ExtractOptions {
                lookahead_days: n,
                negative_sample_rate: 0.05,
                ..Default::default()
            },
        );
        let r = cross_validate(
            &ForestConfig {
                n_trees: 40,
                ..Default::default()
            },
            &data,
            &CvOptions::default(),
        );
        aucs.push(r.mean());
    }
    // Figure 12's downward trend: N=1 must beat N=21 clearly.
    assert!(
        aucs[0] > aucs[2] + 0.01,
        "AUC should decay with lookahead: {aucs:?}"
    );
}

#[test]
fn young_partition_is_more_predictable_end_to_end() {
    let trace = trace();
    let mk = |filter: AgeFilter| {
        let data = build_dataset(
            &trace,
            &ExtractOptions {
                lookahead_days: 1,
                negative_sample_rate: 0.05,
                age_filter: filter,
                ..Default::default()
            },
        );
        cross_validate(
            &ForestConfig {
                n_trees: 40,
                ..Default::default()
            },
            &data,
            &CvOptions::default(),
        )
        .mean()
    };
    let young = mk(AgeFilter::Young);
    let old = mk(AgeFilter::Old);
    // Section 5.3: 0.970 young vs 0.890 old. Assert ordering with slack.
    assert!(
        young > old - 0.05,
        "young {young} should not trail old {old} meaningfully"
    );
}

#[test]
fn error_prediction_pipeline_works() {
    let trace = trace();
    let data = build_dataset(
        &trace,
        &ExtractOptions {
            lookahead_days: 2,
            label: LabelKind::Error(ErrorKind::Uncorrectable),
            negative_sample_rate: 0.02,
            ..Default::default()
        },
    );
    let (pos, neg) = data.class_counts();
    assert!(pos > 50 && neg > 50, "classes: {pos}/{neg}");
    let r = cross_validate(
        &ForestConfig {
            n_trees: 40,
            ..Default::default()
        },
        &data,
        &CvOptions::default(),
    );
    // Paper Table 8: UE prediction at 0.933; drive history makes this an
    // easier task than swap prediction.
    assert!(r.mean() > 0.75, "UE-prediction AUC {}", r.mean());
}
