//! Archive round trips at fleet scale, and cross-codec agreement.

use ssd_field_study::sim::{FleetGen, SimConfig};
use ssd_field_study::types::codec::{
    decode_trace, encode_trace, trace_from_json, trace_to_json,
};

fn trace() -> ssd_field_study::types::FleetTrace {
    FleetGen::new(&SimConfig {
        drives_per_model: 80,
        horizon_days: 1200,
        seed: 99,
        ..SimConfig::default()
    })
    .trace()
}

#[test]
fn binary_roundtrip_fleet_scale() {
    let t = trace();
    let bytes = encode_trace(&t);
    let back = decode_trace(&bytes).expect("decode");
    assert_eq!(back, t);
    back.validate().expect("invariants survive the codec");
}

#[test]
fn json_roundtrip_fleet_scale() {
    let t = trace();
    let json = trace_to_json(&t).expect("serialize");
    let back = trace_from_json(&json).expect("deserialize");
    assert_eq!(back, t);
}

#[test]
fn codecs_agree_with_each_other() {
    let t = trace();
    let via_bin = decode_trace(&encode_trace(&t)).unwrap();
    let via_json = trace_from_json(&trace_to_json(&t).unwrap()).unwrap();
    assert_eq!(via_bin, via_json);
}

#[test]
fn binary_is_compact() {
    let t = trace();
    let bin_len = encode_trace(&t).len();
    let json_len = trace_to_json(&t).unwrap().len();
    // The varint codec should beat JSON by a wide margin on real traces.
    assert!(
        bin_len * 4 < json_len,
        "binary {bin_len} vs json {json_len}"
    );
    // And stay under ~64 bytes per drive-day on average.
    let per_day = bin_len as f64 / t.total_drive_days() as f64;
    assert!(per_day < 64.0, "{per_day} bytes per drive-day");
}

#[test]
fn corrupted_archives_fail_loudly() {
    let t = trace();
    let bytes = encode_trace(&t);
    // Truncation.
    assert!(decode_trace(&bytes[..bytes.len() / 2]).is_err());
    // Header corruption.
    let mut v = bytes.to_vec();
    v[0] ^= 0xFF;
    assert!(decode_trace(&v).is_err());
}
