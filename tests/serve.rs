//! Equivalence battery for the sharded resident fleet service.
//!
//! The service promises that responses are a pure function of
//! (request, fleet) — independent of shard count, client interleaving,
//! and coalescing. Each promise is pinned here:
//!
//! 1. **shard invariance** — every query type answers byte-identically
//!    at 1, 2, and 5 shards (single frames and batch frames alike);
//! 2. **service = resident** — summary, survival, hazard, and top-K
//!    responses match the single-pass resident analyses
//!    (`SummaryAccumulator`, `lifecycle::time_to_failure_km`,
//!    a hand-built `BinnedRate`, and a whole-fleet `OnlineFleet`
//!    ranking) exactly, via the same shortest-round-trip JSON writer;
//! 3. **batching** — a batch frame of N queries costs one shard pass,
//!    and co-arriving frames from concurrent clients coalesce without
//!    changing any client's bytes;
//! 4. **robustness** — truncated/garbage frames and malformed JSON
//!    never panic and always produce typed error responses.

use ssd_field_study_core::serve::protocol::{
    error_body, read_frame, write_frame, ProtocolError, MAX_REQUEST_FRAME,
    MAX_RESPONSE_FRAME,
};
use ssd_field_study_core::serve::{
    serve_connection, Dispatcher, FleetService, Responder, ScorerSpec, ServeConfig,
};
use ssd_field_study_core::streaming::SummaryAccumulator;
use ssd_field_study_core::{failure_records, lifecycle, OnlineFleet};
use ssd_ml::{FlatForest, ForestConfig, RandomForest};
use ssd_sim::{FleetGen, SimConfig};
use ssd_stats::{BinnedRate, SplitMix64};
use ssd_types::json::{self, Value};
use ssd_types::source::TraceSource;
use ssd_types::FleetTrace;
use std::sync::Arc;

/// Shared fleet: 3 models × 50 drives over 1200 days — enough swaps for
/// a non-degenerate scorer and non-trivial survival/hazard shapes.
fn fleet() -> FleetTrace {
    FleetGen::new(&SimConfig {
        drives_per_model: 50,
        horizon_days: 1200,
        seed: 11,
        ..SimConfig::default()
    })
    .trace()
}

fn config(shards: usize) -> ServeConfig {
    ServeConfig {
        shards,
        queue_cap: 4,
        scorer: ScorerSpec::Forest { trees: 8 },
        lookahead_days: 14,
        sample_rate: 0.5,
        seed: 7,
    }
}

fn service(shards: usize) -> FleetService {
    FleetService::load(&TraceSource::InMemory(fleet()), &config(shards))
        .expect("service loads")
}

/// The request frames every equivalence test replays.
const FRAMES: &[&str] = &[
    r#"{"q":"info"}"#,
    r#"{"q":"summary"}"#,
    r#"{"q":"survival"}"#,
    r#"{"q":"hazard"}"#,
    r#"{"q":"hazard","bin_days":90}"#,
    r#"{"q":"topk"}"#,
    r#"{"q":"topk","k":25}"#,
    r#"[{"q":"summary"},{"q":"topk","k":5},{"q":"hazard","bin_days":30},{"q":"survival"}]"#,
];

fn respond_all(svc: &FleetService) -> Vec<Vec<u8>> {
    FRAMES
        .iter()
        .map(|f| svc.respond(f.as_bytes()).expect("well-formed frame"))
        .collect()
}

#[test]
fn responses_are_byte_identical_across_shard_counts() {
    let baseline = respond_all(&service(1));
    for shards in [2, 5] {
        let got = respond_all(&service(shards));
        for (frame, (a, b)) in FRAMES.iter().zip(baseline.iter().zip(&got)) {
            // info embeds the shard count, so compare it field-by-field
            // except `shards`; everything else must match byte-for-byte.
            if frame.contains("\"info\"") {
                let (va, vb) = (parse(a), parse(b));
                for key in ["drives", "drive_days", "horizon_days", "scorer", "lookahead_days"] {
                    assert_eq!(va.get(key), vb.get(key), "{frame}: field {key}");
                }
                assert_eq!(vb.get("shards").and_then(Value::as_u64), Some(shards as u64));
            } else {
                assert_eq!(a, b, "{shards} shards changed bytes for {frame}");
            }
        }
    }
}

fn parse(bytes: &[u8]) -> Value {
    json::parse(std::str::from_utf8(bytes).expect("utf8 response")).expect("json response")
}

fn float_field(v: &Value, key: &str) -> f64 {
    v.get(key).and_then(Value::as_f64).expect(key)
}

#[test]
fn summary_response_matches_resident_analyses() {
    let svc = service(3);
    let t = fleet();
    let v = parse(&svc.respond(br#"{"q":"summary"}"#).expect("respond"));

    let mut acc = SummaryAccumulator::new();
    for d in &t.drives {
        acc.observe(d);
    }
    let s = acc.finish();

    assert_eq!(v.get("drives").and_then(Value::as_u64), Some(s.n_drives as u64));
    assert_eq!(
        v.get("drive_days").and_then(Value::as_u64),
        Some(s.total_drive_days as u64)
    );
    assert_eq!(v.get("swaps").and_then(Value::as_u64), Some(s.total_swaps as u64));
    // Exact float equality: the response floats survive the shortest
    // round-trip writer, so parsing them back must reproduce the resident
    // f64 bit patterns.
    assert_eq!(
        float_field(&v, "failed_frac").to_bits(),
        s.failure_incidence.total_failed_fraction.to_bits()
    );
    let Some(Value::Arr(per_model)) = v.get("per_model") else {
        panic!("per_model missing")
    };
    assert_eq!(per_model.len(), s.failure_incidence.per_model.len());
    for (row, (name, failures, drives, frac)) in
        per_model.iter().zip(&s.failure_incidence.per_model)
    {
        assert_eq!(row.get("model").and_then(Value::as_str), Some(name.as_str()));
        assert_eq!(
            row.get("failures").and_then(Value::as_u64),
            Some(*failures as u64)
        );
        assert_eq!(row.get("drives").and_then(Value::as_u64), Some(*drives as u64));
        assert_eq!(float_field(row, "failed_frac").to_bits(), frac.to_bits());
    }
    let Some(Value::Arr(counts)) = v.get("failure_counts") else {
        panic!("failure_counts missing")
    };
    let counts: Vec<u64> = counts.iter().filter_map(Value::as_u64).collect();
    let expect: Vec<u64> = s.failure_counts.count_of.iter().map(|&c| c as u64).collect();
    assert_eq!(counts, expect);
    let Some(Value::Arr(rates)) = v.get("error_rates") else {
        panic!("error_rates missing")
    };
    assert_eq!(rates.len(), s.error_incidence.rates.len());
    for (row, expect) in rates.iter().zip(&s.error_incidence.rates) {
        let Value::Arr(row) = row else { panic!("rate row") };
        for (got, want) in row.iter().zip(expect) {
            assert_eq!(got.as_f64().expect("rate").to_bits(), want.to_bits());
        }
    }
}

#[test]
fn survival_response_matches_resident_km() {
    let svc = service(2);
    let t = fleet();
    let km = lifecycle::time_to_failure_km(&t);
    let v = parse(&svc.respond(br#"{"q":"survival"}"#).expect("respond"));
    assert_eq!(
        v.get("events").and_then(Value::as_u64),
        Some(km.n_events() as u64)
    );
    assert_eq!(
        v.get("censored").and_then(Value::as_u64),
        Some(km.n_censored() as u64)
    );
    let Some(Value::Arr(steps)) = v.get("steps") else {
        panic!("steps missing")
    };
    assert_eq!(steps.len(), km.steps().len());
    for (step, &(time, surv)) in steps.iter().zip(km.steps()) {
        let Value::Arr(pair) = step else { panic!("step pair") };
        assert_eq!(pair[0].as_f64().expect("t").to_bits(), time.to_bits());
        assert_eq!(pair[1].as_f64().expect("s").to_bits(), surv.to_bits());
    }
}

#[test]
fn hazard_response_matches_hand_built_binned_rate() {
    let svc = service(5);
    let t = fleet();
    let bin_days = 90u32;
    let n_bins = (t.horizon_days.div_ceil(bin_days)) as usize;
    let mut expect = BinnedRate::new(n_bins);
    for d in &t.drives {
        for r in &d.reports {
            expect.add_exposure(((r.age_days / bin_days) as usize).min(n_bins - 1), 1);
        }
        for f in failure_records(d) {
            expect.add_events(((f.fail_day / bin_days) as usize).min(n_bins - 1), 1);
        }
    }
    let v = parse(
        &svc.respond(br#"{"q":"hazard","bin_days":90}"#)
            .expect("respond"),
    );
    let pull = |key: &str| -> Vec<u64> {
        let Some(Value::Arr(arr)) = v.get(key) else {
            panic!("{key} missing")
        };
        arr.iter().filter_map(Value::as_u64).collect()
    };
    assert_eq!(pull("events"), expect.events());
    assert_eq!(pull("exposure"), expect.exposure());
    let Some(Value::Arr(rates)) = v.get("rates") else {
        panic!("rates missing")
    };
    for (got, want) in rates.iter().zip(expect.rates()) {
        match got {
            Value::Null => assert!(want.is_nan(), "null must mean empty bin"),
            other => assert_eq!(other.as_f64().expect("rate").to_bits(), want.to_bits()),
        }
    }
}

#[test]
fn topk_response_matches_whole_fleet_online_ranking() {
    let svc = service(4);
    let t = fleet();
    // Resident reference: one OnlineFleet over the whole trace, scored by
    // a scorer trained exactly as the service trains its own.
    let source = TraceSource::InMemory(t.clone());
    let cfg = config(1);
    let opts = ssd_field_study_core::ExtractOptions {
        lookahead_days: cfg.lookahead_days,
        negative_sample_rate: cfg.sample_rate,
        seed: cfg.seed,
        ..Default::default()
    };
    let mut reader = source.open().expect("open");
    let data =
        ssd_field_study_core::build_dataset_streaming(&mut reader, &opts).expect("dataset");
    let fc = ForestConfig {
        n_trees: 8,
        ..Default::default()
    };
    let scorer = FlatForest::from_forest(&RandomForest::fit(&fc, &data, cfg.seed));
    let mut online = OnlineFleet::new();
    for d in &t.drives {
        online.observe_drive(d);
    }
    let mut scored = online.predict_fleet_day(&scorer);
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));

    let v = parse(&svc.respond(br#"{"q":"topk","k":25}"#).expect("respond"));
    let Some(Value::Arr(drives)) = v.get("drives") else {
        panic!("drives missing")
    };
    assert_eq!(drives.len(), 25.min(scored.len()));
    for (row, (id, score)) in drives.iter().zip(&scored) {
        assert_eq!(row.get("id").and_then(Value::as_u64), Some(u64::from(id.0)));
        assert_eq!(float_field(row, "score").to_bits(), score.to_bits());
    }
}

#[test]
fn batch_frame_costs_one_shard_pass() {
    let svc = service(3);
    assert_eq!(svc.passes(), 0);
    let _ = svc.respond(br#"{"q":"info"}"#).expect("info");
    assert_eq!(svc.passes(), 0, "info must not touch the shards");
    let _ = svc
        .respond(br#"[{"q":"summary"},{"q":"survival"},{"q":"topk"},{"q":"hazard"}]"#)
        .expect("batch");
    assert_eq!(svc.passes(), 1, "a batch shares one pass");
    let _ = svc.respond(br#"{"q":"summary"}"#).expect("summary");
    let _ = svc.respond(br#"{"q":"summary"}"#).expect("summary");
    assert_eq!(svc.passes(), 3, "separate frames are separate passes");
}

#[test]
fn concurrent_clients_get_solo_identical_bytes() {
    let svc = Arc::new(service(3));
    // Solo reference: every frame answered directly, no concurrency.
    let solo = respond_all(&svc);
    let solo_passes = svc.passes();

    let dispatcher = Arc::new(Dispatcher::new(Arc::clone(&svc), 32).expect("dispatcher"));
    let mut handles = Vec::new();
    for client in 0..8 {
        let dispatcher = Arc::clone(&dispatcher);
        handles.push(std::thread::spawn(move || {
            // Each client walks the frames twice from a different offset
            // so the dispatcher sees interleaved mixtures of queries.
            let mut out = Vec::new();
            for i in 0..FRAMES.len() * 2 {
                let j = (i + client) % FRAMES.len();
                out.push((
                    j,
                    dispatcher
                        .submit(FRAMES[j].as_bytes().to_vec())
                        .expect("submit"),
                ));
            }
            out
        }));
    }
    for h in handles {
        for (j, got) in h.join().expect("client thread") {
            assert_eq!(got, solo[j], "concurrent bytes differ for {}", FRAMES[j]);
        }
    }
    // How much coalescing happened is timing-dependent (anywhere from
    // fully shared rounds up to one pass per shard-touching submission);
    // the bytes above are what must not vary. 8 clients × 14
    // shard-touching submissions bounds the pass count from above.
    let passes = svc.passes() - solo_passes;
    assert!(
        (1..=8 * 14).contains(&passes),
        "pass count {passes} outside [1, 112]"
    );
}

#[test]
fn dispatcher_round_trips_match_direct_responses() {
    let svc = Arc::new(service(2));
    let dispatcher = Arc::new(Dispatcher::new(Arc::clone(&svc), 8).expect("dispatcher"));
    for frame in FRAMES {
        let direct = svc.respond(frame.as_bytes()).expect("direct");
        let batched = dispatcher.submit(frame.as_bytes().to_vec()).expect("batched");
        assert_eq!(direct, batched, "dispatcher changed bytes for {frame}");
    }
    // Malformed bodies surface the same typed error either way.
    match dispatcher.submit(b"{broken".to_vec()) {
        Err(ProtocolError::Json(_)) => {}
        other => panic!("expected Json error, got {other:?}"),
    }
}

#[test]
fn connection_loop_answers_then_reports_malformed_frames() {
    let svc = Arc::new(service(2));
    let responder = Responder::Direct(Arc::clone(&svc));
    // A good frame followed by a truncated one.
    let mut wire = Vec::new();
    write_frame(&mut wire, br#"{"q":"info"}"#).expect("frame");
    write_frame(&mut wire, br#"{"q":"summary"}"#).expect("frame");
    wire.truncate(wire.len() - 3);
    let mut input = &wire[..];
    let mut output = Vec::new();
    match serve_connection(&responder, &mut input, &mut output) {
        Err(ProtocolError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    // The good frame was answered, then a typed error frame was written.
    let mut cursor = &output[..];
    let first = read_frame(&mut cursor, MAX_RESPONSE_FRAME).expect("read").expect("some");
    assert_eq!(first, svc.respond(br#"{"q":"info"}"#).expect("info"));
    let second = read_frame(&mut cursor, MAX_RESPONSE_FRAME).expect("read").expect("some");
    let v = parse(&second);
    assert_eq!(
        v.get("err").and_then(|e| e.get("kind")).and_then(Value::as_str),
        Some("truncated-frame")
    );
    assert!(read_frame(&mut cursor, MAX_RESPONSE_FRAME).expect("read").is_none());
}

#[test]
fn malformed_frames_never_panic_and_always_answer_typed() {
    let svc = service(2);
    let responder = Responder::Direct(Arc::new(service(1)));
    let mut rng = SplitMix64::new(0xC0FFEE);
    for case in 0..200 {
        let mode = rng.next_u64() % 4;
        let mut wire = Vec::new();
        match mode {
            // Random garbage bytes, random length.
            0 => {
                let len = (rng.next_u64() % 64) as usize;
                for _ in 0..len {
                    wire.push((rng.next_u64() & 0xFF) as u8);
                }
            }
            // Well-framed garbage body.
            1 => {
                let len = (rng.next_u64() % 48) as usize;
                let mut body = Vec::with_capacity(len);
                for _ in 0..len {
                    body.push((rng.next_u64() & 0xFF) as u8);
                }
                write_frame(&mut wire, &body).expect("frame");
            }
            // A valid frame truncated mid-body.
            2 => {
                write_frame(&mut wire, br#"{"q":"summary"}"#).expect("frame");
                let cut = 1 + (rng.next_u64() as usize) % (wire.len() - 1);
                wire.truncate(cut);
            }
            // Oversized length prefix with no body.
            _ => {
                let len = MAX_REQUEST_FRAME + 1 + (rng.next_u64() % 1000) as u32;
                wire.extend_from_slice(&len.to_le_bytes());
            }
        }
        let mut input = &wire[..];
        let mut output = Vec::new();
        let result = serve_connection(&responder, &mut input, &mut output);
        if let Err(e) = &result {
            // The error is typed, and the peer saw a matching error frame
            // as the last thing on the wire.
            let kind = e.kind();
            assert!(
                !kind.is_empty() && kind != "io",
                "case {case}: unexpected transport error {e}"
            );
            let mut cursor = &output[..];
            let mut last = None;
            while let Ok(Some(frame)) = read_frame(&mut cursor, MAX_RESPONSE_FRAME) {
                last = Some(frame);
            }
            let last = last.expect("an error frame was written");
            let v = parse(&last);
            assert_eq!(
                v.get("err").and_then(|err| err.get("kind")).and_then(Value::as_str),
                Some(kind),
                "case {case}"
            );
        }
    }
    // Direct parse-level fuzz of the same corpus shape.
    for _ in 0..100 {
        let len = (rng.next_u64() % 64) as usize;
        let mut body = Vec::with_capacity(len);
        for _ in 0..len {
            body.push((rng.next_u64() & 0xFF) as u8);
        }
        match svc.respond(&body) {
            Ok(bytes) => {
                // If random bytes happened to parse, the response is JSON.
                let _ = parse(&bytes);
            }
            Err(e) => {
                let rendered = error_body(e.kind(), &e.to_string());
                let v = parse(&rendered);
                assert!(v.get("err").is_some());
            }
        }
    }
}

#[test]
fn topk_without_scorer_is_a_typed_error_response() {
    let cfg = ServeConfig {
        scorer: ScorerSpec::None,
        ..config(2)
    };
    let svc = FleetService::load(&TraceSource::InMemory(fleet()), &cfg).expect("load");
    assert_eq!(svc.meta().scorer, None);
    let v = parse(&svc.respond(br#"{"q":"topk"}"#).expect("respond"));
    assert_eq!(
        v.get("err").and_then(|e| e.get("kind")).and_then(Value::as_str),
        Some("bad-request")
    );
    // Every other query still works.
    let summary = parse(&svc.respond(br#"{"q":"summary"}"#).expect("respond"));
    assert!(summary.get("drives").is_some());
}
