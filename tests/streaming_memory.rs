//! Constant-memory proof for the streaming decode path (ISSUE 4
//! acceptance): summarizing an archive through `TraceDecoder` +
//! `SummaryAccumulator` must allocate a small fraction of what resident
//! `decode_trace` needs, because only one drive is ever held at a time.
//!
//! Measured with a counting global allocator; this file holds exactly one
//! test so no concurrent test pollutes the peak counter.

use ssd_field_study::core::streaming::SummaryAccumulator;
use ssd_field_study::sim::{FleetGen, SimConfig};
use ssd_field_study::types::codec::{decode_trace, TraceDecoder};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Anchors the peak to the current live size and returns that baseline.
fn reset_peak() -> usize {
    let live = LIVE.load(Ordering::Relaxed);
    PEAK.store(live, Ordering::Relaxed);
    live
}

#[test]
fn streaming_summary_allocates_a_fraction_of_resident_decode() {
    // Large enough that resident decode is tens of MB; generated up front
    // so the pool's worker allocations don't land inside a measurement.
    let cfg = SimConfig {
        drives_per_model: 200,
        horizon_days: 800,
        seed: 4242,
        ..SimConfig::default()
    };
    let bytes = FleetGen::new(&cfg).run_vec();

    // Resident path: materialize every drive.
    let baseline = reset_peak();
    let trace = decode_trace(&bytes).expect("decode");
    let resident_peak = PEAK.load(Ordering::Relaxed) - baseline;
    let n_drives = trace.drives.len();
    drop(trace);

    // Streaming path: one reused scratch drive + the fold accumulator.
    let baseline = reset_peak();
    let mut dec = TraceDecoder::new(bytes.as_slice()).expect("header");
    let mut acc = SummaryAccumulator::new();
    dec.for_each_drive(|d| acc.observe(d)).expect("stream");
    let summary = acc.finish();
    let streaming_peak = PEAK.load(Ordering::Relaxed) - baseline;

    assert_eq!(summary.n_drives, n_drives);
    assert!(
        resident_peak > 10 << 20,
        "resident decode should be tens of MB at this scale, got {resident_peak}"
    );
    assert!(
        streaming_peak * 10 < resident_peak,
        "streaming summary must stay far below resident decode: \
         streaming peak {streaming_peak} vs resident peak {resident_peak}"
    );
}
